// Contraction-hierarchy backend tests: preprocessing invariants, randomized
// point-to-point and one-to-many parity against Dijkstra across seeds and
// both city generators, path unpacking validity, disconnected graphs and
// degenerate inputs, oracle-level backend parity (identical compdists and
// BatchStats), and thread-count determinism of the engine on the CH backend.
//
// Parity against Dijkstra uses EXPECT_NEAR with a 1e-6 tolerance: a CH
// distance is the same real-number sum as the Dijkstra distance but the
// floating-point additions may associate differently along shortcuts.
// Parity between CH point-to-point and CH one-to-many is exact (==): both
// minimize over the same per-side label functions.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "graph/ch_graph.h"
#include "graph/ch_preprocessor.h"
#include "graph/ch_query.h"
#include "graph/dijkstra.h"
#include "graph/distance_oracle.h"
#include "graph/generators.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/workload.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

constexpr double kTol = 1e-6;

CHGraph BuildCH(const RoadNetwork& g) {
  return CHPreprocessor(CHPreprocessorOptions{}).Build(g);
}

std::vector<VertexId> SampleVertices(const RoadNetwork& g, std::size_t n,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int>(g.num_vertices()) - 1)));
  }
  return out;
}

void ExpectPointToPointParity(const RoadNetwork& g, std::uint64_t seed,
                              std::size_t pairs = 50) {
  const CHGraph ch = BuildCH(g);
  CHQuery query(&ch);
  DijkstraEngine dijkstra(&g);
  const std::vector<VertexId> a = SampleVertices(g, pairs, seed);
  const std::vector<VertexId> b =
      SampleVertices(g, pairs, testing::DeriveSeed(seed, 1));
  for (std::size_t i = 0; i < pairs; ++i) {
    SCOPED_TRACE("pair " + std::to_string(a[i]) + "->" + std::to_string(b[i]));
    const Distance want = dijkstra.PointToPoint(a[i], b[i]);
    const Distance got = query.PointToPoint(a[i], b[i]);
    ASSERT_TRUE(std::isfinite(want));
    EXPECT_NEAR(got, want, kTol);
  }
}

void ExpectOneToManyParity(const RoadNetwork& g, std::uint64_t seed,
                           std::size_t targets = 40) {
  const CHGraph ch = BuildCH(g);
  CHQuery query(&ch);
  DijkstraEngine dijkstra(&g);
  const VertexId source = SampleVertices(g, 1, seed)[0];
  // Large batch (downward-sweep path), including duplicates and the source.
  std::vector<VertexId> ts =
      SampleVertices(g, targets, testing::DeriveSeed(seed, 2));
  ts.push_back(source);
  ts.push_back(ts.front());
  ASSERT_GT(ts.size(), CHQuery::kBucketBatchLimit);
  std::vector<Distance> got(ts.size(), -1.0);
  query.OneToMany(source, ts, got);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    SCOPED_TRACE("sweep target " + std::to_string(ts[i]));
    EXPECT_NEAR(got[i], dijkstra.PointToPoint(source, ts[i]), kTol);
    // Sweep sums associate top-down, the bidirectional query fwd+bwd, so
    // parity with PointToPoint is NEAR, not bitwise.
    EXPECT_NEAR(got[i], query.PointToPoint(source, ts[i]), kTol);
  }
  // Small batch (bucket path): joins minimize the same fwd+bwd label sums
  // as the bidirectional query, so parity is bitwise.
  const std::vector<VertexId> small(
      ts.begin(), ts.begin() + CHQuery::kBucketBatchLimit);
  std::vector<Distance> small_got(small.size(), -1.0);
  query.OneToMany(source, small, small_got);
  for (std::size_t i = 0; i < small.size(); ++i) {
    SCOPED_TRACE("bucket target " + std::to_string(small[i]));
    EXPECT_EQ(small_got[i], query.PointToPoint(source, small[i]));
    EXPECT_NEAR(small_got[i], dijkstra.PointToPoint(source, small[i]), kTol);
  }
}

TEST(CHPreprocessorTest, RanksAreAPermutation) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(60, 90, 5);
  const CHGraph ch = BuildCH(g);
  std::vector<char> seen(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(ch.rank(v), g.num_vertices());
    EXPECT_FALSE(seen[ch.rank(v)]);
    seen[ch.rank(v)] = 1;
  }
  EXPECT_EQ(ch.num_arcs(), g.num_edges() + ch.num_shortcuts());
  EXPECT_GT(ch.MemoryBytes(), 0u);
}

TEST(CHPreprocessorTest, UpwardArcsPointUpward) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(50, 80, 11);
  const CHGraph ch = BuildCH(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const CHGraph::UpArc& arc : ch.UpArcs(v)) {
      EXPECT_GT(ch.rank(arc.head), ch.rank(v));
    }
  }
}

TEST(CHPreprocessorTest, DeterministicAcrossRebuilds) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(40, 70, 21);
  const CHGraph ch1 = BuildCH(g);
  const CHGraph ch2 = BuildCH(g);
  EXPECT_EQ(ch1.num_shortcuts(), ch2.num_shortcuts());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(ch1.rank(v), ch2.rank(v));
  }
}

TEST(CHQueryTest, SmallGridExact) {
  const RoadNetwork g = testing::MakeSmallGrid(100.0);
  const CHGraph ch = BuildCH(g);
  CHQuery query(&ch);
  EXPECT_DOUBLE_EQ(query.PointToPoint(0, 8), 400.0);
  EXPECT_DOUBLE_EQ(query.PointToPoint(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(query.PointToPoint(8, 0), 400.0);
}

TEST(CHQueryTest, PointToPointParityRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectPointToPointParity(
        testing::MakeRandomConnectedGraph(80, 140, seed), seed);
  }
}

TEST(CHQueryTest, PointToPointParityGridCity) {
  for (std::uint64_t seed : {7u, 8u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    GridCityOptions opts;
    opts.rows = 15;
    opts.cols = 15;
    opts.seed = seed;
    auto g = MakeGridCity(opts);
    ASSERT_TRUE(g.ok());
    ExpectPointToPointParity(g.value(), seed);
  }
}

TEST(CHQueryTest, PointToPointParityRingRadialCity) {
  for (std::uint64_t seed : {9u, 10u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RingRadialCityOptions opts;
    opts.rings = 8;
    opts.spokes = 16;
    opts.seed = seed;
    auto g = MakeRingRadialCity(opts);
    ASSERT_TRUE(g.ok());
    ExpectPointToPointParity(g.value(), seed);
  }
}

TEST(CHQueryTest, OneToManyParityBothGenerators) {
  GridCityOptions gopts;
  gopts.rows = 14;
  gopts.cols = 14;
  gopts.seed = 17;
  auto grid = MakeGridCity(gopts);
  ASSERT_TRUE(grid.ok());
  ExpectOneToManyParity(grid.value(), 17);

  RingRadialCityOptions ropts;
  ropts.rings = 7;
  ropts.spokes = 14;
  ropts.seed = 18;
  auto ring = MakeRingRadialCity(ropts);
  ASSERT_TRUE(ring.ok());
  ExpectOneToManyParity(ring.value(), 18);

  ExpectOneToManyParity(testing::MakeRandomConnectedGraph(90, 150, 19), 19);
}

TEST(CHQueryTest, PathUnpacksToOriginalEdges) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(70, 120, 29);
  const CHGraph ch = BuildCH(g);
  CHQuery query(&ch);
  DijkstraEngine dijkstra(&g);
  const std::vector<VertexId> a = SampleVertices(g, 25, 101);
  const std::vector<VertexId> b = SampleVertices(g, 25, 102);
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("pair " + std::to_string(a[i]) + "->" + std::to_string(b[i]));
    Distance dist = -1.0;
    const std::vector<VertexId> path = query.Path(a[i], b[i], &dist);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), a[i]);
    EXPECT_EQ(path.back(), b[i]);
    // Every hop is an original edge and the hop weights sum to the distance.
    Distance total = 0.0;
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      Distance best_hop = kInfDistance;
      for (const auto& arc : g.OutArcs(path[k])) {
        if (arc.head == path[k + 1]) best_hop = std::min(best_hop, arc.weight);
      }
      ASSERT_LT(best_hop, kInfDistance)
          << "hop " << path[k] << "->" << path[k + 1] << " is not an edge";
      total += best_hop;
    }
    EXPECT_NEAR(total, dist, kTol);
    EXPECT_NEAR(dist, dijkstra.PointToPoint(a[i], b[i]), kTol);
  }
}

TEST(CHQueryTest, DisconnectedGraph) {
  // Two triangles with no connection between them.
  RoadNetwork::Builder b;
  for (int i = 0; i < 6; ++i) b.AddVertex(Coord{100.0 * i, 0.0});
  b.AddEdge(0, 1, 10.0);
  b.AddEdge(1, 2, 10.0);
  b.AddEdge(0, 2, 15.0);
  b.AddEdge(3, 4, 10.0);
  b.AddEdge(4, 5, 10.0);
  b.AddEdge(3, 5, 15.0);
  auto built = std::move(b).Build();
  ASSERT_TRUE(built.ok());
  const RoadNetwork g = std::move(built).value();
  const CHGraph ch = BuildCH(g);
  CHQuery query(&ch);
  EXPECT_EQ(query.PointToPoint(0, 3), kInfDistance);
  EXPECT_DOUBLE_EQ(query.PointToPoint(0, 2), 15.0);
  EXPECT_DOUBLE_EQ(query.PointToPoint(3, 5), 15.0);
  EXPECT_TRUE(query.Path(0, 4).empty());

  const std::vector<VertexId> targets = {1, 3, 2, 5, 0};
  std::vector<Distance> dists(targets.size(), -1.0);
  query.OneToMany(0, targets, dists);
  EXPECT_DOUBLE_EQ(dists[0], 10.0);
  EXPECT_EQ(dists[1], kInfDistance);
  EXPECT_DOUBLE_EQ(dists[2], 15.0);
  EXPECT_EQ(dists[3], kInfDistance);
  EXPECT_DOUBLE_EQ(dists[4], 0.0);
}

TEST(CHQueryTest, SingleVertexAndSingleEdge) {
  RoadNetwork::Builder b1;
  b1.AddVertex(Coord{0.0, 0.0});
  auto g1 = std::move(b1).Build();
  ASSERT_TRUE(g1.ok());
  const CHGraph ch1 = BuildCH(g1.value());
  CHQuery q1(&ch1);
  EXPECT_DOUBLE_EQ(q1.PointToPoint(0, 0), 0.0);
  EXPECT_EQ(q1.Path(0, 0), std::vector<VertexId>{0});

  RoadNetwork::Builder b2;
  b2.AddVertex(Coord{0.0, 0.0});
  b2.AddVertex(Coord{100.0, 0.0});
  b2.AddEdge(0, 1, 42.0);
  auto g2 = std::move(b2).Build();
  ASSERT_TRUE(g2.ok());
  const CHGraph ch2 = BuildCH(g2.value());
  CHQuery q2(&ch2);
  EXPECT_DOUBLE_EQ(q2.PointToPoint(0, 1), 42.0);
  EXPECT_EQ(q2.Path(0, 1), (std::vector<VertexId>{0, 1}));
}

TEST(CHQueryTest, ParallelEdgesUseLightest) {
  RoadNetwork::Builder b;
  b.AddVertex(Coord{0.0, 0.0});
  b.AddVertex(Coord{100.0, 0.0});
  b.AddVertex(Coord{200.0, 0.0});
  b.AddEdge(0, 1, 10.0);
  b.AddEdge(0, 1, 4.0);  // parallel, lighter
  b.AddEdge(1, 2, 7.0);
  auto built = std::move(b).Build();
  ASSERT_TRUE(built.ok());
  const RoadNetwork g = std::move(built).value();
  const CHGraph ch = BuildCH(g);
  CHQuery query(&ch);
  EXPECT_DOUBLE_EQ(query.PointToPoint(0, 2), 11.0);
  Distance dist = -1.0;
  const std::vector<VertexId> path = query.Path(0, 2, &dist);
  EXPECT_EQ(path, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(dist, 11.0);
}

TEST(CHQueryTest, TinyWitnessBudgetStaysExact) {
  // A pathological settle budget may only add redundant shortcuts — never
  // wrong distances.
  const RoadNetwork g = testing::MakeRandomConnectedGraph(50, 90, 31);
  CHPreprocessorOptions opts;
  opts.witness_settle_limit = 1;
  const CHGraph ch = CHPreprocessor(opts).Build(g);
  CHQuery query(&ch);
  DijkstraEngine dijkstra(&g);
  const std::vector<VertexId> a = SampleVertices(g, 30, 201);
  const std::vector<VertexId> b = SampleVertices(g, 30, 202);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(query.PointToPoint(a[i], b[i]),
                dijkstra.PointToPoint(a[i], b[i]), kTol);
  }
}

TEST(DistanceOracleCHTest, BackendParityAndIdenticalAccounting) {
  const RoadNetwork g = testing::MakeRandomConnectedGraph(80, 130, 37);
  const CHGraph ch = BuildCH(g);
  DistanceOracle dij(&g);
  DistanceOracle chh(&g, &ch);
  EXPECT_EQ(dij.backend(), DistanceBackend::kDijkstra);
  EXPECT_EQ(chh.backend(), DistanceBackend::kCH);

  const VertexId source = 5;
  std::vector<VertexId> targets = SampleVertices(g, 30, 301);
  targets.push_back(source);
  targets.push_back(targets.front());  // duplicate
  std::vector<Distance> a, b;
  dij.BatchDist(source, targets, &a);
  chh.BatchDist(source, targets, &b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], kTol);
  }
  EXPECT_EQ(dij.compdists(), chh.compdists());
  EXPECT_EQ(dij.batch_stats().batch_calls, chh.batch_stats().batch_calls);
  EXPECT_EQ(dij.batch_stats().pairs_requested,
            chh.batch_stats().pairs_requested);
  EXPECT_EQ(dij.batch_stats().pairs_from_cache,
            chh.batch_stats().pairs_from_cache);
  EXPECT_EQ(dij.batch_stats().pairs_swept, chh.batch_stats().pairs_swept);
  EXPECT_EQ(dij.batch_stats().sweeps, chh.batch_stats().sweeps);

  // Warm + promote behaves the same on both backends.
  const VertexId ws = 9;
  const std::vector<VertexId> warm = SampleVertices(g, 10, 302);
  dij.WarmFrom(ws, warm);
  chh.WarmFrom(ws, warm);
  EXPECT_EQ(dij.compdists(), chh.compdists());
  EXPECT_NEAR(dij.Dist(ws, warm[0]), chh.Dist(ws, warm[0]), kTol);
  EXPECT_EQ(dij.batch_stats().warm_hits, chh.batch_stats().warm_hits);
  EXPECT_EQ(dij.compdists(), chh.compdists());

  // Re-running the identical batch after a cache clear is deterministic
  // bit-for-bit; a serial Dist answers via the bidirectional query, whose
  // sums may associate differently from the batch sweep (NEAR only).
  chh.ClearCache();
  const Distance via_batch = b[0];
  std::vector<Distance> rebatch;
  chh.BatchDist(source, targets, &rebatch);
  EXPECT_EQ(rebatch[0], via_batch);
  chh.ClearCache();
  EXPECT_NEAR(chh.Dist(source, targets[0]), via_batch, kTol);
}

TEST(DistanceOracleCHTest, UnreachablePairsCountedWithoutSearch) {
  RoadNetwork::Builder b;
  for (int i = 0; i < 4; ++i) b.AddVertex(Coord{100.0 * i, 0.0});
  b.AddEdge(0, 1, 10.0);
  b.AddEdge(2, 3, 10.0);
  auto built = std::move(b).Build();
  ASSERT_TRUE(built.ok());
  const RoadNetwork g = std::move(built).value();
  const CHGraph ch = BuildCH(g);
  for (DistanceOracle* oracle :
       {new DistanceOracle(&g), new DistanceOracle(&g, &ch)}) {
    EXPECT_EQ(oracle->Dist(0, 2), kInfDistance);
    EXPECT_EQ(oracle->compdists(), 1u);
    EXPECT_EQ(oracle->Dist(0, 2), kInfDistance);  // cached
    EXPECT_EQ(oracle->compdists(), 1u);
    EXPECT_TRUE(oracle->Path(1, 3).empty());
    EXPECT_EQ(oracle->compdists(), 2u);
    std::vector<Distance> out;
    oracle->BatchDist(0, std::vector<VertexId>{1, 2, 3, 2}, &out);
    EXPECT_DOUBLE_EQ(out[0], 10.0);
    EXPECT_EQ(out[1], kInfDistance);
    EXPECT_EQ(out[2], kInfDistance);
    EXPECT_EQ(out[3], kInfDistance);
    // (0,2) is already cached from the Dist call above, so the batch adds
    // two distinct new pairs: (0,1) reachable, (0,3) unreachable.
    EXPECT_EQ(oracle->compdists(), 4u);
    EXPECT_EQ(oracle->batch_stats().pairs_swept, 2u);
    delete oracle;
  }
}

// --- Engine-level determinism on the CH backend -----------------------------

struct World {
  RoadNetwork graph;
  std::unique_ptr<GridIndex> grid;
};

World MakeWorld(std::uint64_t seed = 3) {
  World w;
  GridCityOptions copts;
  copts.rows = 12;
  copts.cols = 12;
  copts.seed = seed;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok());
  w.graph = std::move(g).value();
  auto grid = GridIndex::Build(&w.graph, {.cell_size_meters = 300.0});
  PTAR_CHECK(grid.ok());
  w.grid = std::make_unique<GridIndex>(std::move(grid).value());
  return w;
}

struct RequestTrace {
  bool served = false;
  Option chosen;
  std::vector<std::vector<Option>> skylines;
  std::vector<std::uint64_t> compdists;
};

std::vector<RequestTrace> TraceRun(const World& w,
                                   std::span<const Request> requests,
                                   int threads) {
  EngineOptions opts;
  opts.num_vehicles = 20;
  opts.seed = 13;
  opts.threads = threads;
  opts.distance_backend = DistanceBackend::kCH;
  Engine engine(&w.graph, w.grid.get(), opts);
  BaselineMatcher ba;
  SsaMatcher ssa;
  DsaMatcher dsa;
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  std::vector<RequestTrace> traces;
  traces.reserve(requests.size());
  for (const Request& r : requests) {
    auto outcome = engine.ProcessRequest(r, matchers);
    RequestTrace t;
    t.served = outcome.served;
    t.chosen = outcome.chosen;
    for (const MatchResult& res : outcome.results) {
      t.skylines.push_back(res.options);
      t.compdists.push_back(res.stats.compdists);
    }
    traces.push_back(std::move(t));
  }
  return traces;
}

TEST(EngineCHBackendTest, ThreadCountDoesNotChangeOutcomes) {
  const World w = MakeWorld();
  WorkloadOptions wopts;
  wopts.num_requests = 20;
  wopts.duration_seconds = 600.0;
  wopts.epsilon = 0.5;
  wopts.waiting_minutes = 3.0;
  wopts.seed = 8;
  auto reqs = GenerateWorkload(w.graph, wopts);
  ASSERT_TRUE(reqs.ok());
  const std::vector<Request> requests = std::move(reqs).value();

  const auto serial = TraceRun(w, requests, 1);
  const auto pooled = TraceRun(w, requests, 4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(serial[i].served, pooled[i].served);
    EXPECT_EQ(serial[i].chosen, pooled[i].chosen);
    ASSERT_EQ(serial[i].skylines.size(), pooled[i].skylines.size());
    for (std::size_t m = 0; m < serial[i].skylines.size(); ++m) {
      SCOPED_TRACE("matcher " + std::to_string(m));
      EXPECT_EQ(serial[i].skylines[m], pooled[i].skylines[m]);
      EXPECT_EQ(serial[i].compdists[m], pooled[i].compdists[m]);
    }
  }
}

TEST(EngineCHBackendTest, ServesRequestsOnCH) {
  const World w = MakeWorld(5);
  WorkloadOptions wopts;
  wopts.num_requests = 15;
  wopts.duration_seconds = 600.0;
  wopts.epsilon = 0.5;
  wopts.waiting_minutes = 3.0;
  wopts.seed = 4;
  auto reqs = GenerateWorkload(w.graph, wopts);
  ASSERT_TRUE(reqs.ok());

  EngineOptions opts;
  opts.num_vehicles = 15;
  opts.seed = 2;
  opts.distance_backend = DistanceBackend::kCH;
  Engine engine(&w.graph, w.grid.get(), opts);
  BaselineMatcher ba;
  std::vector<Matcher*> matchers = {&ba};
  const RunStats stats = engine.Run(reqs.value(), matchers);
  EXPECT_GT(stats.served, 0u);
}

}  // namespace
}  // namespace ptar
