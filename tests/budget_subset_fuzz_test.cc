// 100-seed partial-skyline subset fuzz (the acceptance sweep for anytime
// matching): every matcher runs under a deliberately tiny work budget, so
// most results are truncated, and every truncated skyline must be a subset
// of the brute-force reference's full option set — zero wrong-price or
// wrong-pickup options tolerated. Budgets cycle through several sizes so
// the cut lands at different safe points (mid-scan, mid-cell-ring, after
// one vehicle) across the corpus.

#include <gtest/gtest.h>

#include <cstdint>

#include "check/differential.h"
#include "check/scenario.h"

namespace ptar::check {
namespace {

TEST(BudgetSubsetFuzzTest, PartialSkylinesAreAlwaysSubsetsOfReference) {
  constexpr std::uint64_t kBudgets[] = {10, 40, 150, 600};
  std::uint64_t requests = 0;
  std::uint64_t partials = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const ScenarioSpec spec = MakeRandomSpec(seed);
    DifferentialConfig config;
    config.request_budget = kBudgets[seed % 4];
    const auto outcome = RunDifferential(spec, config);
    ASSERT_TRUE(outcome.ok()) << "seed " << seed << ": "
                              << outcome.status().message();
    for (const Divergence& d : outcome->divergences) {
      ADD_FAILURE() << "seed " << seed << " budget "
                    << config.request_budget << ": " << d.Describe();
    }
    requests += outcome->requests_run;
    partials += outcome->partial_results;
  }
  EXPECT_GT(requests, 0u);
  // The sweep must actually have exercised truncation, in quantity.
  EXPECT_GT(partials, 100u)
      << "budgets too generous: the subset property went untested";
}

}  // namespace
}  // namespace ptar::check
