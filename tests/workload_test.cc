// Tests for the synthetic workload generator.

#include "sim/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.h"
#include "tests/test_util.h"

namespace ptar {
namespace {

RoadNetwork City() {
  GridCityOptions copts;
  copts.rows = 15;
  copts.cols = 15;
  copts.seed = 4;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok());
  return std::move(g).value();
}

TEST(WorkloadTest, GeneratesRequestedCount) {
  const RoadNetwork g = City();
  WorkloadOptions opts;
  opts.num_requests = 123;
  auto reqs = GenerateWorkload(g, opts);
  ASSERT_TRUE(reqs.ok());
  EXPECT_EQ(reqs->size(), 123u);
}

TEST(WorkloadTest, IdsSequentialAndTimesSorted) {
  const RoadNetwork g = City();
  WorkloadOptions opts;
  opts.num_requests = 200;
  opts.duration_seconds = 500.0;
  auto reqs = GenerateWorkload(g, opts);
  ASSERT_TRUE(reqs.ok());
  for (std::size_t i = 0; i < reqs->size(); ++i) {
    EXPECT_EQ((*reqs)[i].id, i);
    EXPECT_GE((*reqs)[i].submit_time, 0.0);
    EXPECT_LT((*reqs)[i].submit_time, 500.0);
    if (i > 0) {
      EXPECT_GE((*reqs)[i].submit_time, (*reqs)[i - 1].submit_time);
    }
  }
}

TEST(WorkloadTest, EndpointsValidAndDistinct) {
  const RoadNetwork g = City();
  WorkloadOptions opts;
  opts.num_requests = 300;
  auto reqs = GenerateWorkload(g, opts);
  ASSERT_TRUE(reqs.ok());
  for (const Request& r : *reqs) {
    EXPECT_LT(r.start, g.num_vertices());
    EXPECT_LT(r.destination, g.num_vertices());
    EXPECT_NE(r.start, r.destination);
  }
}

TEST(WorkloadTest, ParametersPropagate) {
  const RoadNetwork g = City();
  WorkloadOptions opts;
  opts.num_requests = 10;
  opts.riders = 3;
  opts.waiting_minutes = 4.0;
  opts.epsilon = 0.35;
  opts.speed_mps = 10.0;
  auto reqs = GenerateWorkload(g, opts);
  ASSERT_TRUE(reqs.ok());
  for (const Request& r : *reqs) {
    EXPECT_EQ(r.riders, 3);
    EXPECT_DOUBLE_EQ(r.max_wait_dist, 4.0 * 60.0 * 10.0);
    EXPECT_DOUBLE_EQ(r.epsilon, 0.35);
  }
}

TEST(WorkloadTest, DeterministicPerSeed) {
  const RoadNetwork g = City();
  WorkloadOptions opts;
  opts.num_requests = 50;
  opts.seed = 99;
  auto a = GenerateWorkload(g, opts);
  auto b = GenerateWorkload(g, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].start, (*b)[i].start);
    EXPECT_EQ((*a)[i].destination, (*b)[i].destination);
    EXPECT_DOUBLE_EQ((*a)[i].submit_time, (*b)[i].submit_time);
  }
  opts.seed = 100;
  auto c = GenerateWorkload(g, opts);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (std::size_t i = 0; i < a->size(); ++i) {
    if ((*a)[i].start != (*c)[i].start) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, HotspotsSkewSpatialDistribution) {
  const RoadNetwork g = City();
  WorkloadOptions hot;
  hot.num_requests = 2000;
  hot.num_hotspots = 2;
  hot.hotspot_prob = 1.0;
  hot.hotspot_stddev_meters = 150.0;
  hot.seed = 5;
  WorkloadOptions uniform = hot;
  uniform.hotspot_prob = 0.0;
  auto hreqs = GenerateWorkload(g, hot);
  auto ureqs = GenerateWorkload(g, uniform);
  ASSERT_TRUE(hreqs.ok() && ureqs.ok());
  // Hotspot draws concentrate on far fewer distinct vertices.
  std::set<VertexId> hot_starts;
  std::set<VertexId> uni_starts;
  for (const Request& r : *hreqs) hot_starts.insert(r.start);
  for (const Request& r : *ureqs) uni_starts.insert(r.start);
  EXPECT_LT(hot_starts.size(), uni_starts.size() / 2);
}

TEST(WorkloadTest, RushPeaksConcentrateArrivals) {
  const RoadNetwork g = City();
  WorkloadOptions peaked;
  peaked.num_requests = 4000;
  peaked.duration_seconds = 1000.0;
  peaked.peak_sharpness = 8.0;
  peaked.seed = 77;
  auto reqs = GenerateWorkload(g, peaked);
  ASSERT_TRUE(reqs.ok());
  ASSERT_EQ(reqs->size(), 4000u);
  // Count arrivals near the two peaks (30 % and 75 %) vs. the trough in
  // between (~52 %). Window half-width 5 % of the duration.
  auto count_in = [&](double center) {
    std::size_t n = 0;
    for (const Request& r : *reqs) {
      if (std::abs(r.submit_time - center * 1000.0) <= 50.0) ++n;
    }
    return n;
  };
  const std::size_t peak1 = count_in(0.30);
  const std::size_t peak2 = count_in(0.75);
  const std::size_t trough = count_in(0.52);
  EXPECT_GT(peak1, 3 * trough);
  EXPECT_GT(peak2, 3 * trough);
  // Sharpness 0 stays roughly flat.
  WorkloadOptions flat = peaked;
  flat.peak_sharpness = 0.0;
  auto flat_reqs = GenerateWorkload(g, flat);
  ASSERT_TRUE(flat_reqs.ok());
  std::size_t flat_peak = 0;
  std::size_t flat_trough = 0;
  for (const Request& r : *flat_reqs) {
    if (std::abs(r.submit_time - 300.0) <= 50.0) ++flat_peak;
    if (std::abs(r.submit_time - 520.0) <= 50.0) ++flat_trough;
  }
  EXPECT_LT(flat_peak, 2 * flat_trough + 40);
}

TEST(WorkloadTest, ZeroRequestsIsEmpty) {
  const RoadNetwork g = City();
  WorkloadOptions opts;
  opts.num_requests = 0;
  auto reqs = GenerateWorkload(g, opts);
  ASSERT_TRUE(reqs.ok());
  EXPECT_TRUE(reqs->empty());
}

TEST(WorkloadTest, RejectsBadOptions) {
  const RoadNetwork g = City();
  WorkloadOptions opts;
  opts.duration_seconds = -1.0;
  EXPECT_FALSE(GenerateWorkload(g, opts).ok());
  opts = WorkloadOptions{};
  opts.riders = 0;
  EXPECT_FALSE(GenerateWorkload(g, opts).ok());
}

}  // namespace
}  // namespace ptar
