// Unit tests for the per-request lifecycle recorder (obs/lifecycle.h):
// sampling purity and rates, line layout (deterministic core vs timing
// overlay), and flush-append file semantics.

#include "obs/lifecycle.h"

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace ptar::obs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

TEST(LifecycleRecorderTest, DefaultConstructedIsDisabled) {
  LifecycleRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  recorder.Record(LifecycleEvent{});  // No-op, must not crash.
  EXPECT_EQ(recorder.events_recorded(), 0u);
  EXPECT_TRUE(recorder.Flush().ok());
}

TEST(LifecycleRecorderTest, SamplingIsAPureFunctionOfIdAndSeed) {
  LifecycleOptions opts;
  opts.path = TempPath("lifecycle_pure.jsonl");
  opts.sample_rate = 0.5;
  opts.seed = 7;
  LifecycleRecorder a(opts);
  LifecycleRecorder b(opts);
  for (std::uint64_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(a.Sampled(id), b.Sampled(id)) << id;
    EXPECT_EQ(a.Sampled(id), a.Sampled(id)) << id;  // Stateless.
  }
  // A different seed samples a different set.
  opts.seed = 8;
  LifecycleRecorder c(opts);
  int differs = 0;
  for (std::uint64_t id = 0; id < 1000; ++id) {
    if (a.Sampled(id) != c.Sampled(id)) ++differs;
  }
  EXPECT_GT(differs, 100);
}

TEST(LifecycleRecorderTest, SampleRateBoundsAndProportion) {
  LifecycleOptions opts;
  opts.path = TempPath("lifecycle_rate.jsonl");
  opts.seed = 3;

  opts.sample_rate = 1.0;
  LifecycleRecorder all(opts);
  opts.sample_rate = 0.0;
  LifecycleRecorder none(opts);
  opts.sample_rate = 0.25;
  LifecycleRecorder quarter(opts);

  int sampled = 0;
  for (std::uint64_t id = 0; id < 4000; ++id) {
    EXPECT_TRUE(all.Sampled(id));
    EXPECT_FALSE(none.Sampled(id));
    if (quarter.Sampled(id)) ++sampled;
  }
  // The hash is uniform; 4000 draws at rate .25 land near 1000.
  EXPECT_GT(sampled, 800);
  EXPECT_LT(sampled, 1200);
}

TEST(LifecycleRecorderTest, LineLayoutCoreFieldsAndServedExtras) {
  LifecycleEvent event;
  event.request = 42;
  event.submit_time = 12.5;
  event.wave = 3;
  event.snapshot_epoch = 17;
  event.level = "full";
  event.matcher = "SSA";
  event.options = 2;
  event.disposition = "served";
  event.vehicle = 9;
  event.pickup_dist = 100.25;
  event.price = 7.5;
  event.match_us = 123.0;

  const std::string line = LifecycleEventToJsonLine(event, false);
  EXPECT_EQ(line.find("{\"schema\":1,\"req\":42,\"t\":12.500000"), 0u);
  EXPECT_NE(line.find("\"wave\":3"), std::string::npos);
  EXPECT_NE(line.find("\"epoch\":17"), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"full\""), std::string::npos);
  EXPECT_NE(line.find("\"matcher\":\"SSA\""), std::string::npos);
  EXPECT_NE(line.find("\"disposition\":\"served\""), std::string::npos);
  EXPECT_NE(line.find("\"vehicle\":9"), std::string::npos);
  EXPECT_NE(line.find("\"price\":7.500000"), std::string::npos);
  // The timing overlay is opt-in.
  EXPECT_EQ(line.find("match_us"), std::string::npos);
  const std::string timed = LifecycleEventToJsonLine(event, true);
  EXPECT_NE(timed.find("\"match_us\":123.000000"), std::string::npos);

  // Unserved requests omit the vehicle/price block entirely.
  event.disposition = "unserved";
  const std::string unserved = LifecycleEventToJsonLine(event, false);
  EXPECT_EQ(unserved.find("vehicle"), std::string::npos);
  EXPECT_EQ(unserved.find("price"), std::string::npos);
}

TEST(LifecycleRecorderTest, RecordBuffersOnlySampledIds) {
  LifecycleOptions opts;
  opts.path = TempPath("lifecycle_sampled.jsonl");
  opts.sample_rate = 0.5;
  opts.seed = 11;
  LifecycleRecorder recorder(opts);
  std::uint64_t expected = 0;
  for (std::uint64_t id = 0; id < 100; ++id) {
    if (recorder.Sampled(id)) ++expected;
    LifecycleEvent event;
    event.request = id;
    event.disposition = "unserved";
    recorder.Record(event);
  }
  EXPECT_EQ(recorder.events_recorded(), expected);
}

TEST(LifecycleRecorderTest, FlushTruncatesOnceThenAppends) {
  LifecycleOptions opts;
  opts.path = TempPath("lifecycle_flush.jsonl");
  LifecycleRecorder recorder(opts);

  // Stale content from a previous run must not leak into this one.
  std::FILE* f = std::fopen(opts.path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("stale\n", f);
  std::fclose(f);

  LifecycleEvent event;
  event.request = 1;
  event.disposition = "shed";
  recorder.Record(event);
  ASSERT_TRUE(recorder.Flush().ok());
  event.request = 2;
  recorder.Record(event);
  ASSERT_TRUE(recorder.Flush().ok());
  ASSERT_TRUE(recorder.Flush().ok());  // Idempotent with nothing buffered.

  const std::string content = ReadAll(opts.path);
  EXPECT_EQ(content.find("stale"), std::string::npos);
  EXPECT_NE(content.find("\"req\":1"), std::string::npos);
  EXPECT_NE(content.find("\"req\":2"), std::string::npos);
  EXPECT_EQ(recorder.buffered(), "");
}

}  // namespace
}  // namespace ptar::obs
