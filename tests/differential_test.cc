// Fast, deterministic coverage of the differential harness itself:
// skyline diff classification, replay round-trips, the shrunk regression
// corpus, and the end-to-end catch-and-shrink loop on an injected bug.
// Registered under the `differential` CTest label.

#include "check/differential.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/fault_injection.h"
#include "check/replay_io.h"
#include "check/scenario.h"
#include "check/shrinker.h"
#include "rideshare/baseline_matcher.h"

namespace ptar::check {
namespace {

constexpr double kTol = 1e-6;

Option Opt(VehicleId v, Distance pickup, double price) {
  return Option{v, pickup, price};
}

TEST(DiffSkylinesTest, IdenticalSkylinesProduceNoDivergence) {
  const std::vector<Option> s = {Opt(0, 100, 5), Opt(1, 50, 9)};
  EXPECT_TRUE(DiffSkylines(s, s, kTol).empty());
}

TEST(DiffSkylinesTest, ClassifiesMissingAndSpurious) {
  const std::vector<Option> ref = {Opt(0, 100, 5), Opt(1, 50, 9)};
  const std::vector<Option> act = {Opt(0, 100, 5), Opt(2, 80, 7)};
  const std::vector<Divergence> diffs = DiffSkylines(ref, act, kTol);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].type, DivergenceType::kMissingOption);
  EXPECT_EQ(diffs[0].expected.vehicle, 1u);
  EXPECT_EQ(diffs[1].type, DivergenceType::kSpuriousOption);
  EXPECT_EQ(diffs[1].actual.vehicle, 2u);
}

TEST(DiffSkylinesTest, ClassifiesSingleDimensionMismatches) {
  // Same vehicle, one dimension agrees: the pair is reported as a value
  // error on the other dimension rather than a missing/spurious pair.
  const std::vector<Divergence> price_diff =
      DiffSkylines(std::vector<Option>{Opt(3, 100, 5)},
                   std::vector<Option>{Opt(3, 100, 6)}, kTol);
  ASSERT_EQ(price_diff.size(), 1u);
  EXPECT_EQ(price_diff[0].type, DivergenceType::kWrongPrice);

  const std::vector<Divergence> pickup_diff =
      DiffSkylines(std::vector<Option>{Opt(3, 100, 5)},
                   std::vector<Option>{Opt(3, 140, 5)}, kTol);
  ASSERT_EQ(pickup_diff.size(), 1u);
  EXPECT_EQ(pickup_diff[0].type, DivergenceType::kWrongPickupDist);
}

TEST(DiffSkylinesTest, ToleratesLowBitNoise) {
  const std::vector<Option> ref = {Opt(0, 100.0, 5.0)};
  const std::vector<Option> act = {Opt(0, 100.0 + 1e-9, 5.0 - 1e-9)};
  EXPECT_TRUE(DiffSkylines(ref, act, kTol).empty());
}

TEST(NormalizeSkylineTest, DropsTieGhosts) {
  // A knife-edge survivor: (100, 5) sits an ulp to the *left* of a
  // strictly cheaper option, so exact dominance keeps it while the other
  // implementation (with the opposite ulp ordering) evicts it.
  // Normalization drops the ghost, so the sets diff clean.
  const std::vector<Option> with_ghost = {Opt(0, 100.0, 5.0),
                                          Opt(1, 100.0 + 1e-9, 4.0)};
  const std::vector<Option> kept = NormalizeSkyline(with_ghost, kTol);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].vehicle, 1u);
  const std::vector<Option> without = {Opt(1, 100.0 - 1e-9, 4.0)};
  EXPECT_TRUE(DiffSkylines(without, with_ghost, kTol).empty());
  EXPECT_TRUE(DiffSkylines(with_ghost, without, kTol).empty());
}

TEST(NormalizeSkylineTest, MatchingIgnoresMultiplicity) {
  // An ulp-level pickup tie keeps two copies in one implementation and
  // one in the other; both copies match the single reference option.
  const std::vector<Option> both = {Opt(0, 100.0, 5.0),
                                    Opt(0, 100.0 + 1e-9, 5.0)};
  const std::vector<Option> one = {Opt(0, 100.0, 5.0)};
  EXPECT_TRUE(DiffSkylines(one, both, kTol).empty());
  EXPECT_TRUE(DiffSkylines(both, one, kTol).empty());
}

TEST(NormalizeSkylineTest, KeepsBeyondToleranceOptions) {
  const std::vector<Option> incomparable = {Opt(0, 100, 5), Opt(1, 50, 9)};
  EXPECT_EQ(NormalizeSkyline(incomparable, kTol).size(), 2u);
}

TEST(ReplayTest, RoundTripPreservesScenarioAndOutcome) {
  for (std::uint64_t seed : {2u, 9u}) {
    const ScenarioSpec spec = MakeRandomSpec(seed);
    std::stringstream first;
    ASSERT_TRUE(SaveReplay(spec, first).ok());
    auto loaded = LoadReplay(first);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();

    // The serialized form is a fixpoint...
    std::stringstream second;
    ASSERT_TRUE(SaveReplay(loaded.value(), second).ok());
    EXPECT_EQ(first.str(), second.str()) << "seed " << seed;

    // ...and the loaded spec replays to the identical outcome.
    auto a = RunDifferential(spec, {});
    auto b = RunDifferential(loaded.value(), {});
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->requests_run, b->requests_run);
    EXPECT_EQ(a->divergences.size(), b->divergences.size());
  }
}

// The corpus holds shrunk repros of bugs the harness has caught (one real,
// two injected). The stock matchers must stay divergence-free on them.
class CorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusTest, ReplaysCleanlyWithStockMatchers) {
  const std::string path =
      std::string(PTAR_TEST_CORPUS_DIR) + "/" + GetParam();
  auto spec = LoadReplayFromFile(path);
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  auto outcome = RunDifferential(spec.value(), {});
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_GT(outcome->requests_run, 0u);
  for (const Divergence& d : outcome->divergences) {
    ADD_FAILURE() << d.Describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Replays, CorpusTest,
    ::testing::Values("lemma9_same_gap_regression.replay",
                      "broken_lemma3_shrunk.replay",
                      "broken_lemma11_shrunk.replay"));

// End to end: an injected over-aggressive bound is caught, attributed to
// its lemma, and shrinks to a handful of vehicles and requests.
TEST(ShrinkerTest, CatchesAndMinimizesInjectedLemmaBug) {
  const MatcherFactory factory = [] {
    std::vector<std::unique_ptr<Matcher>> m;
    m.push_back(std::make_unique<BaselineMatcher>());
    m.push_back(std::make_unique<BrokenLemmaMatcher>(/*lemma=*/3));
    return m;
  };

  DifferentialConfig config;
  config.stop_at_first = true;
  ScenarioSpec failing;
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 20 && !caught; ++seed) {
    const ScenarioSpec spec = MakeRandomSpec(seed);
    auto outcome = RunDifferential(spec, config, factory);
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    if (!outcome->ok()) {
      caught = true;
      failing = spec;
      EXPECT_EQ(outcome->divergences[0].type,
                DivergenceType::kMissingOption);
      EXPECT_GT(outcome->divergences[0].lemma_hits[3], 0u);
    }
  }
  ASSERT_TRUE(caught) << "injected bug never diverged in 20 seeds";

  ShrinkOptions sopts;
  sopts.max_evals = 200;
  const ShrinkResult shrunk = ShrinkScenario(failing, sopts, factory);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_LE(shrunk.spec.vehicle_starts.size(), 4u);
  EXPECT_LE(shrunk.spec.requests.size(), 6u);
  EXPECT_EQ(shrunk.divergence.type, DivergenceType::kMissingOption);

  // The minimized scenario survives a serialization round-trip and still
  // diverges — exactly what `--repro_out` files rely on.
  std::stringstream out;
  ASSERT_TRUE(SaveReplay(shrunk.spec, out).ok());
  auto reloaded = LoadReplay(out);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().message();
  auto replayed = RunDifferential(reloaded.value(), config, factory);
  ASSERT_TRUE(replayed.ok());
  EXPECT_FALSE(replayed->ok());
}

TEST(ShrinkerTest, CleanScenarioIsNotShrunk) {
  const ScenarioSpec spec = MakeRandomSpec(5);
  ShrinkOptions sopts;
  sopts.max_evals = 50;
  const ShrinkResult result = ShrinkScenario(spec, sopts);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.spec.requests.size(), spec.requests.size());
}

}  // namespace
}  // namespace ptar::check
