// ptar_check — differential correctness harness for the matching
// algorithms.
//
// Replays randomized scenarios through BA, SSA(1.0), DSA(1.0) and the
// brute-force reference matcher in lockstep, comparing skylines per
// request. Any divergence is a correctness bug in a matcher or a pruning
// lemma; the harness classifies it, optionally shrinks the scenario to a
// minimal repro, and serializes the repro as a replay file.
//
// Modes:
//   (default)   fuzz --seeds randomized scenarios; exit 1 on divergence
//   --replay    run one saved replay file instead of random scenarios
//   --selftest  sabotage a lemma on purpose and demand the harness catch,
//               classify, and shrink it (validates the harness itself)
//
// All randomness is seed-driven; identical invocations are bit-identical.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "check/differential.h"
#include "check/fault_injection.h"
#include "check/replay_io.h"
#include "check/scenario.h"
#include "check/shrinker.h"
#include "check/tree_twin.h"
#include "common/flags.h"
#include "obs/report.h"
#include "prune/ellipse_prefilter.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ellipse_matcher.h"
#include "rideshare/ssa_matcher.h"

namespace ptar::check {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int FailUsage(const std::string& message) {
  std::fprintf(stderr, "error: %s\n(run 'ptar_check --help' for usage)\n",
               message.c_str());
  return 2;
}

int CheckUnused(const FlagParser& flags) {
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (unused.empty()) return 0;
  std::string joined;
  for (const std::string& name : unused) joined += " --" + name;
  return FailUsage("unknown flag(s):" + joined);
}

int Help() {
  std::printf(
      "ptar_check — differential oracle harness (BA/SSA/DSA vs brute "
      "force)\n\n"
      "usage: ptar_check [--seeds=N] [--first_seed=N] [--shrink]\n"
      "                  [--repro_out=FILE] [--replay=FILE] [--selftest]\n"
      "                  [--broken_lemma=1|3|11] [--report_out=FILE]\n"
      "                  [--prune_check] [--corpus_dir=DIR]\n"
      "                  [--shrink_ellipse=F]\n"
      "                  [--distance_backend=dijkstra|ch]\n"
      "                  [--request_budget=N] [--inject=SPEC] [--verbose]\n"
      "                  [--tree_twin=N] [--tree_cap=N]\n"
      "                  [--help]\n\n"
      "  --seeds=N         randomized scenarios to fuzz (default 50)\n"
      "  --first_seed=N    first seed of the range (default 1)\n"
      "  --shrink          minimize the first failing scenario\n"
      "  --repro_out=FILE  where to write the shrunk replay "
      "(default repro.replay)\n"
      "  --replay=FILE     run one saved replay file and exit\n"
      "  --selftest        verify the harness catches a sabotaged lemma\n"
      "  --broken_lemma=N  which lemma the selftest sabotages (default 3)\n"
      "  --report_out=FILE versioned JSON run report (schema v2, "
      "\"differential\" counters)\n"
      "  --prune_check     prune-soundness mode: run BA/SSA/DSA with and\n"
      "                    without the GeoPrune ellipse prefilter (plus the\n"
      "                    standalone ELLIPSE matcher) against the\n"
      "                    reference; any skyline difference between pruned\n"
      "                    and unpruned twins fails the sweep\n"
      "  --corpus_dir=DIR  with --prune_check: first replay every .replay\n"
      "                    file in DIR (the saved regression corpus) under\n"
      "                    the pruned matcher set, then fuzz --seeds\n"
      "  --shrink_ellipse=F  with --prune_check: ShrinkEllipse fault\n"
      "                    selftest — under-size every ellipse by factor F\n"
      "                    in (0, 1) and demand the harness catch the\n"
      "                    resulting missing options and attribute them to\n"
      "                    the prune stage (default 1 = sound, no fault)\n"
      "  --distance_backend=NAME  oracle backend for every engine in the\n"
      "                    run: dijkstra (default) or ch\n"
      "  --request_budget=N  deterministic work-unit budget per tested\n"
      "                    matcher; truncated (partial) skylines are then\n"
      "                    checked as subsets of the reference's full\n"
      "                    option set instead of for equality\n"
      "  --inject=SPEC     oracle faults for every tested matcher (never\n"
      "                    the reference): comma-separated key=value of\n"
      "                    fail_rate, seed, slow_us, stall_every, stall_us\n"
      "                    (e.g. fail_rate=0.05,seed=7); faulted results\n"
      "                    must still be subsets of the clean reference\n"
      "  --tree_twin=N     kinetic-tree twin mode: fuzz N seeded op\n"
      "                    sequences through the legacy (flat-vector) and\n"
      "                    arena tree representations in lockstep; any\n"
      "                    observable difference (branch sets, bookkeeping,\n"
      "                    statuses, auditor findings) fails the run\n"
      "  --tree_cap=N      with --tree_twin: also ride a capped arena tree\n"
      "                    (--tree_max_branches=N) and check it stays a\n"
      "                    branch-subset with every loss attributed to its\n"
      "                    drop counters (default 8; 0 disables)\n");
  return 0;
}

/// Accumulates per-run statistics destined for the obs report pipeline.
struct HarnessStats {
  std::uint64_t scenarios = 0;
  std::uint64_t requests = 0;
  std::uint64_t divergences = 0;
  std::uint64_t partial_results = 0;  ///< Subset-checked truncated results.
  std::vector<MatcherSummary> matchers;  ///< Merged across scenarios.

  void Fold(const DifferentialOutcome& outcome) {
    ++scenarios;
    requests += outcome.requests_run;
    divergences += outcome.divergences.size();
    partial_results += outcome.partial_results;
    if (matchers.empty()) {
      matchers = outcome.matchers;
      return;
    }
    for (std::size_t m = 0;
         m < matchers.size() && m < outcome.matchers.size(); ++m) {
      matchers[m].options_sum += outcome.matchers[m].options_sum;
      matchers[m].totals.Accumulate(outcome.matchers[m].totals);
    }
  }
};

/// Emits the run through the standard report pipeline: every harness
/// counter lives under the "differential/" metrics section; per-matcher
/// totals reuse the MatcherReport rows.
int WriteReport(const HarnessStats& stats, const std::string& path) {
  if (path.empty()) return 0;
  obs::RunReport report;
  report.tool = "ptar_check";
  report.metrics.AddCounter("differential/scenarios", stats.scenarios);
  report.metrics.AddCounter("differential/requests", stats.requests);
  report.metrics.AddCounter("differential/divergences", stats.divergences);
  report.metrics.AddCounter("differential/partial_results",
                            stats.partial_results);
  for (const MatcherSummary& m : stats.matchers) {
    obs::MatcherReport row;
    row.name = m.name;
    row.options_sum = m.options_sum;
    row.verified_vehicles = m.totals.verified_vehicles;
    row.compdists = m.totals.compdists;
    row.scanned_cells = m.totals.scanned_cells;
    row.pruned_cells = m.totals.pruned_cells;
    row.pruned_vehicles = m.totals.pruned_vehicles;
    row.elapsed_micros = m.totals.elapsed_micros;
    report.matchers.push_back(row);
    for (std::size_t l = 1; l <= LemmaCounters::kNumLemmas; ++l) {
      if (m.totals.lemma_hits[l] == 0) continue;
      report.metrics.AddCounter(
          "differential/" + m.name + "/lemma" + std::to_string(l) + "_hits",
          m.totals.lemma_hits[l]);
    }
    if (m.totals.ellipse_checked > 0) {
      report.metrics.AddCounter(
          "differential/" + m.name + "/ellipse_checked",
          m.totals.ellipse_checked);
      report.metrics.AddCounter("differential/" + m.name + "/ellipse_pruned",
                                m.totals.ellipse_pruned);
    }
  }
  const Status status = obs::WriteRunReport(report, path);
  if (!status.ok()) return Fail(status);
  return 0;
}

void PrintDivergences(const DifferentialOutcome& outcome, std::size_t limit) {
  std::size_t shown = 0;
  for (const Divergence& d : outcome.divergences) {
    if (shown++ >= limit) {
      std::printf("  ... %zu more divergence(s)\n",
                  outcome.divergences.size() - limit);
      break;
    }
    std::printf("  %s\n", d.Describe().c_str());
  }
}

/// Shrinks a failing spec and writes the repro; prints the reduction.
int ShrinkAndSave(const ScenarioSpec& spec, const std::string& repro_out,
                  const MatcherFactory& factory,
                  const DifferentialConfig& config) {
  ShrinkOptions sopts;
  sopts.config = config;
  const ShrinkResult shrunk = ShrinkScenario(spec, sopts, factory);
  if (!shrunk.reproduced) {
    std::fprintf(stderr, "error: divergence did not reproduce for shrink\n");
    return 1;
  }
  std::printf(
      "shrunk to %zu vehicle(s), %zu request(s) in %zu eval(s):\n  %s\n",
      shrunk.spec.vehicle_starts.size(), shrunk.spec.requests.size(),
      shrunk.evals, shrunk.divergence.Describe().c_str());
  if (!repro_out.empty()) {
    const Status saved = SaveReplayToFile(shrunk.spec, repro_out);
    if (!saved.ok()) return Fail(saved);
    std::printf("repro written to %s\n", repro_out.c_str());
  }
  return 0;
}

int RunOneReplay(const std::string& path, bool shrink,
                 const std::string& repro_out,
                 const std::string& report_out,
                 const DifferentialConfig& config,
                 const MatcherFactory& factory = nullptr) {
  auto spec = LoadReplayFromFile(path);
  if (!spec.ok()) return Fail(spec.status());
  auto outcome = RunDifferential(spec.value(), config, factory);
  if (!outcome.ok()) return Fail(outcome.status());

  HarnessStats stats;
  stats.Fold(outcome.value());
  if (const int rc = WriteReport(stats, report_out); rc != 0) return rc;

  if (!outcome.value().ok()) {
    std::printf("FAIL %s: %zu divergence(s) over %zu request(s)\n",
                path.c_str(), outcome.value().divergences.size(),
                outcome.value().requests_run);
    PrintDivergences(outcome.value(), 10);
    if (shrink) {
      if (const int rc =
              ShrinkAndSave(spec.value(), repro_out, factory, config);
          rc != 0) {
        return rc;
      }
    }
    return 1;
  }
  std::printf("OK %s: %zu request(s), no divergence\n", path.c_str(),
              outcome.value().requests_run);
  return 0;
}

int Fuzz(std::uint64_t first_seed, std::uint64_t seeds, bool shrink,
         const std::string& repro_out, const std::string& report_out,
         bool verbose, const DifferentialConfig& config,
         const MatcherFactory& factory = nullptr) {
  HarnessStats stats;
  for (std::uint64_t seed = first_seed; seed < first_seed + seeds; ++seed) {
    const ScenarioSpec spec = MakeRandomSpec(seed);
    auto outcome = RunDifferential(spec, config, factory);
    if (!outcome.ok()) return Fail(outcome.status());
    stats.Fold(outcome.value());
    if (!outcome.value().ok()) {
      std::printf("FAIL seed %llu: %zu divergence(s)\n",
                  static_cast<unsigned long long>(seed),
                  outcome.value().divergences.size());
      PrintDivergences(outcome.value(), 10);
      WriteReport(stats, report_out);
      if (shrink) {
        if (const int rc = ShrinkAndSave(spec, repro_out, factory, config);
            rc != 0) {
          return rc;
        }
      }
      return 1;
    }
    if (verbose) {
      std::printf("seed %llu ok (%zu requests)\n",
                  static_cast<unsigned long long>(seed),
                  outcome.value().requests_run);
    }
  }
  if (const int rc = WriteReport(stats, report_out); rc != 0) return rc;
  std::printf(
      "OK: %llu scenario(s), %llu request(s), 0 divergences across %zu "
      "matcher(s)%s\n",
      static_cast<unsigned long long>(stats.scenarios),
      static_cast<unsigned long long>(stats.requests),
      stats.matchers.size(),
      stats.partial_results == 0
          ? ""
          : (" (" + std::to_string(stats.partial_results) +
             " subset-checked partial result(s))")
                .c_str());
  return 0;
}

/// Validates the harness end to end: a sabotaged lemma must produce a
/// divergence that is caught, classified as missing-option, attributed to
/// the sabotaged lemma's counter, and shrunk to a small repro.
int SelfTest(int broken_lemma, std::uint64_t seeds,
             const std::string& repro_out,
             const DifferentialConfig& config) {
  const MatcherFactory factory = [broken_lemma] {
    std::vector<std::unique_ptr<Matcher>> matchers;
    matchers.push_back(std::make_unique<BaselineMatcher>());
    matchers.push_back(std::make_unique<BrokenLemmaMatcher>(broken_lemma));
    return matchers;
  };

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const ScenarioSpec spec = MakeRandomSpec(seed);
    auto outcome = RunDifferential(spec, config, factory);
    if (!outcome.ok()) return Fail(outcome.status());
    if (outcome.value().ok()) continue;

    const Divergence& first = outcome.value().divergences.front();
    std::printf("selftest: seed %llu diverged: %s\n",
                static_cast<unsigned long long>(seed),
                first.Describe().c_str());
    if (first.type != DivergenceType::kMissingOption) {
      std::fprintf(stderr,
                   "selftest FAIL: expected missing-option, got %s\n",
                   DivergenceTypeName(first.type));
      return 1;
    }
    if (first.lemma_hits[static_cast<std::size_t>(broken_lemma)] == 0) {
      std::fprintf(stderr,
                   "selftest FAIL: lemma %d counter is zero in the "
                   "divergent request\n",
                   broken_lemma);
      return 1;
    }
    ShrinkOptions sopts;
    sopts.config = config;
    const ShrinkResult shrunk = ShrinkScenario(spec, sopts, factory);
    if (!shrunk.reproduced) {
      std::fprintf(stderr, "selftest FAIL: shrink did not reproduce\n");
      return 1;
    }
    std::printf("selftest: shrunk to %zu vehicle(s), %zu request(s)\n",
                shrunk.spec.vehicle_starts.size(),
                shrunk.spec.requests.size());
    if (shrunk.spec.vehicle_starts.size() > 4 ||
        shrunk.spec.requests.size() > 6) {
      std::fprintf(stderr, "selftest FAIL: repro not minimal enough\n");
      return 1;
    }
    if (!repro_out.empty()) {
      const Status saved = SaveReplayToFile(shrunk.spec, repro_out);
      if (!saved.ok()) return Fail(saved);
      std::printf("selftest repro written to %s\n", repro_out.c_str());
    }
    std::printf("selftest PASS (broken lemma %d caught)\n", broken_lemma);
    return 0;
  }
  std::fprintf(stderr,
               "selftest FAIL: no divergence in %llu seed(s) — the broken "
               "lemma was not caught\n",
               static_cast<unsigned long long>(seeds));
  return 1;
}

/// BA/SSA/DSA with and without the GeoPrune prefilter, plus the standalone
/// ELLIPSE matcher. The unpruned trio already pins the exact answer against
/// the reference, so any divergence on a "+EL" twin (or ELLIPSE) is a
/// prefilter soundness bug, not a matcher bug.
MatcherFactory MakePruneFactory(double shrink_factor) {
  return [shrink_factor] {
    prune::EllipsePrefilter::Options popts;
    popts.shrink_factor = shrink_factor;
    std::vector<std::unique_ptr<Matcher>> matchers;
    matchers.push_back(std::make_unique<BaselineMatcher>());
    matchers.push_back(std::make_unique<SsaMatcher>(1.0));
    matchers.push_back(std::make_unique<DsaMatcher>(1.0));
    matchers.push_back(std::make_unique<PrunedMatcher>(
        std::make_unique<BaselineMatcher>(), popts));
    matchers.push_back(std::make_unique<PrunedMatcher>(
        std::make_unique<SsaMatcher>(1.0), popts));
    matchers.push_back(std::make_unique<PrunedMatcher>(
        std::make_unique<DsaMatcher>(1.0), popts));
    matchers.push_back(std::make_unique<EllipseMatcher>(popts));
    return matchers;
  };
}

/// Prune-soundness sweep: every saved regression repro first (each one is a
/// scenario that once exposed a pruning bug, so the prefilter must stay
/// divergence-free on it), then fresh fuzz seeds — all under the pruned
/// matcher set.
int PruneCheck(std::uint64_t first_seed, std::uint64_t seeds,
               const std::string& corpus_dir, bool shrink,
               const std::string& repro_out, const std::string& report_out,
               bool verbose, const DifferentialConfig& config) {
  const MatcherFactory factory = MakePruneFactory(1.0);
  if (!corpus_dir.empty()) {
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    for (std::filesystem::directory_iterator it(corpus_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->path().extension() == ".replay") files.push_back(it->path());
    }
    if (ec) {
      return FailUsage("cannot read --corpus_dir=" + corpus_dir + ": " +
                       ec.message());
    }
    if (files.empty()) {
      return FailUsage("no .replay files in --corpus_dir=" + corpus_dir);
    }
    std::sort(files.begin(), files.end());
    for (const std::filesystem::path& file : files) {
      if (const int rc = RunOneReplay(file.string(), shrink, repro_out,
                                      /*report_out=*/"", config, factory);
          rc != 0) {
        return rc;
      }
    }
  }
  return Fuzz(first_seed, seeds, shrink, repro_out, report_out, verbose,
              config, factory);
}

/// Validates that the prune-soundness harness has teeth: a deliberately
/// under-sized ellipse (the ShrinkEllipse fault) must produce a divergence
/// that is caught, classified as missing-option, attributed to the prune
/// stage via the ellipse_pruned counter, and shrunk to a small repro.
int PruneSelfTest(double shrink_factor, std::uint64_t seeds,
                  const std::string& repro_out,
                  const DifferentialConfig& config) {
  // BA vs BA+EL(shrunk): any answer difference is the injected fault.
  const MatcherFactory factory = [shrink_factor] {
    prune::EllipsePrefilter::Options popts;
    popts.shrink_factor = shrink_factor;
    std::vector<std::unique_ptr<Matcher>> matchers;
    matchers.push_back(std::make_unique<BaselineMatcher>());
    matchers.push_back(std::make_unique<PrunedMatcher>(
        std::make_unique<BaselineMatcher>(), popts));
    return matchers;
  };

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const ScenarioSpec spec = MakeRandomSpec(seed);
    auto outcome = RunDifferential(spec, config, factory);
    if (!outcome.ok()) return Fail(outcome.status());
    if (outcome.value().ok()) continue;

    const Divergence& first = outcome.value().divergences.front();
    std::printf("prune selftest: seed %llu diverged: %s\n",
                static_cast<unsigned long long>(seed),
                first.Describe().c_str());
    if (first.type != DivergenceType::kMissingOption) {
      std::fprintf(stderr,
                   "prune selftest FAIL: expected missing-option, got %s\n",
                   DivergenceTypeName(first.type));
      return 1;
    }
    if (first.ellipse_pruned == 0) {
      std::fprintf(stderr,
                   "prune selftest FAIL: divergence not attributed to the "
                   "prune stage (ellipse_pruned == 0)\n");
      return 1;
    }
    ShrinkOptions sopts;
    sopts.config = config;
    const ShrinkResult shrunk = ShrinkScenario(spec, sopts, factory);
    if (!shrunk.reproduced) {
      std::fprintf(stderr, "prune selftest FAIL: shrink did not reproduce\n");
      return 1;
    }
    std::printf("prune selftest: shrunk to %zu vehicle(s), %zu request(s)\n",
                shrunk.spec.vehicle_starts.size(),
                shrunk.spec.requests.size());
    if (!repro_out.empty()) {
      const Status saved = SaveReplayToFile(shrunk.spec, repro_out);
      if (!saved.ok()) return Fail(saved);
      std::printf("prune selftest repro written to %s\n", repro_out.c_str());
    }
    std::printf("prune selftest PASS (ShrinkEllipse %.3g caught)\n",
                shrink_factor);
    return 0;
  }
  std::fprintf(stderr,
               "prune selftest FAIL: no divergence in %llu seed(s) — the "
               "under-sized ellipse was not caught\n",
               static_cast<unsigned long long>(seeds));
  return 1;
}

/// Tree-twin mode: drives the legacy (flat-vector) and arena kinetic trees
/// through identical op sequences and fails on any observable difference.
/// Exercised by differential-nightly on both distance backends.
int TreeTwin(std::uint64_t first_seed, std::uint64_t seeds, std::size_t cap,
             DistanceBackend backend, const std::string& report_out,
             bool verbose) {
  TreeTwinOutcome total;
  for (std::uint64_t seed = first_seed; seed < first_seed + seeds; ++seed) {
    const TreeTwinOutcome one = RunTreeTwin(seed, backend, cap);
    if (verbose) {
      std::printf("seed %llu: %llu ops, %llu commits, %llu arrivals%s\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(one.ops),
                  static_cast<unsigned long long>(one.commits),
                  static_cast<unsigned long long>(one.arrivals),
                  one.ok() ? "" : " [DIVERGED]");
    }
    total.Fold(one);
  }
  for (const std::string& finding : total.findings) {
    std::fprintf(stderr, "divergence: %s\n", finding.c_str());
  }
  if (!report_out.empty()) {
    obs::RunReport report;
    report.tool = "ptar_check";
    report.metrics.AddCounter("tree_twin/seeds", seeds);
    report.metrics.AddCounter("tree_twin/ops", total.ops);
    report.metrics.AddCounter("tree_twin/commits", total.commits);
    report.metrics.AddCounter("tree_twin/arrivals", total.arrivals);
    report.metrics.AddCounter("tree_twin/divergences", total.divergences);
    report.metrics.AddCounter("tree_twin/capped_losses", total.capped_losses);
    report.metrics.AddCounter("tree_twin/capped_drops", total.capped_drops);
    const Status status = obs::WriteRunReport(report, report_out);
    if (!status.ok()) return Fail(status);
  }
  if (!total.ok()) {
    std::fprintf(stderr,
                 "FAIL: %llu divergence(s) across %llu seed(s) of the "
                 "kinetic-tree twin\n",
                 static_cast<unsigned long long>(total.divergences),
                 static_cast<unsigned long long>(seeds));
    return 1;
  }
  std::printf(
      "PASS: legacy and arena kinetic trees agreed over %llu seed(s) "
      "(%llu ops, %llu commits, %llu arrivals; capped twin: %llu attributed "
      "loss(es), %llu dropped branch(es))\n",
      static_cast<unsigned long long>(seeds),
      static_cast<unsigned long long>(total.ops),
      static_cast<unsigned long long>(total.commits),
      static_cast<unsigned long long>(total.arrivals),
      static_cast<unsigned long long>(total.capped_losses),
      static_cast<unsigned long long>(total.capped_drops));
  return 0;
}

int Main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) return FailUsage(parsed.status().message());
  const FlagParser& flags = parsed.value();

  const auto help = flags.GetBool("help", false);
  if (!help.ok()) return Fail(help.status());
  if (*help) return Help();

  const auto seeds = flags.GetInt("seeds", 50);
  const auto first_seed = flags.GetInt("first_seed", 1);
  const auto shrink = flags.GetBool("shrink", false);
  const auto selftest = flags.GetBool("selftest", false);
  const auto broken_lemma = flags.GetInt("broken_lemma", 3);
  const auto prune_check = flags.GetBool("prune_check", false);
  const auto shrink_ellipse = flags.GetDouble("shrink_ellipse", 1.0);
  const std::string corpus_dir = flags.GetString("corpus_dir", "");
  const auto verbose = flags.GetBool("verbose", false);
  const std::string replay = flags.GetString("replay", "");
  const std::string repro_out = flags.GetString("repro_out", "repro.replay");
  const std::string report_out = flags.GetString("report_out", "");
  const std::string backend_name =
      flags.GetString("distance_backend", "dijkstra");
  const auto request_budget = flags.GetInt("request_budget", 0);
  const auto tree_twin = flags.GetInt("tree_twin", 0);
  const auto tree_cap = flags.GetInt("tree_cap", 8);
  const std::string inject = flags.GetString("inject", "");
  if (!seeds.ok()) return Fail(seeds.status());
  if (!first_seed.ok()) return Fail(first_seed.status());
  if (!shrink.ok()) return Fail(shrink.status());
  if (!selftest.ok()) return Fail(selftest.status());
  if (!broken_lemma.ok()) return Fail(broken_lemma.status());
  if (!prune_check.ok()) return Fail(prune_check.status());
  if (!shrink_ellipse.ok()) return Fail(shrink_ellipse.status());
  if (!verbose.ok()) return Fail(verbose.status());
  if (!request_budget.ok()) return Fail(request_budget.status());
  if (*seeds < 1) return FailUsage("--seeds must be >= 1");
  if (*first_seed < 0) return FailUsage("--first_seed must be >= 0");
  if (*request_budget < 0) return FailUsage("--request_budget must be >= 0");
  if (!tree_twin.ok()) return Fail(tree_twin.status());
  if (!tree_cap.ok()) return Fail(tree_cap.status());
  if (flags.Has("tree_twin") && *tree_twin < 1) {
    return FailUsage("--tree_twin must be >= 1");
  }
  if (*tree_cap < 0) return FailUsage("--tree_cap must be >= 0");
  if (*shrink_ellipse <= 0.0 || *shrink_ellipse > 1.0) {
    return FailUsage("--shrink_ellipse must be in (0, 1]");
  }
  if (!*prune_check && (*shrink_ellipse != 1.0 || !corpus_dir.empty())) {
    return FailUsage(
        "--shrink_ellipse and --corpus_dir require --prune_check");
  }
  const auto backend = ParseDistanceBackend(backend_name);
  if (!backend.ok()) return FailUsage(backend.status().message());
  if (const int rc = CheckUnused(flags); rc != 0) return rc;

  DifferentialConfig config;
  config.distance_backend = *backend;
  config.request_budget = static_cast<std::uint64_t>(*request_budget);
  if (!inject.empty()) {
    auto plan = ParseFaultPlan(inject);
    if (!plan.ok()) return FailUsage(plan.status().message());
    config.faults = *plan;
  }

  if (*tree_twin > 0) {
    return TreeTwin(static_cast<std::uint64_t>(*first_seed),
                    static_cast<std::uint64_t>(*tree_twin),
                    static_cast<std::size_t>(*tree_cap), *backend, report_out,
                    *verbose);
  }
  if (*selftest) {
    if (*broken_lemma != 1 && *broken_lemma != 3 && *broken_lemma != 11) {
      return FailUsage("--broken_lemma must be 1, 3, or 11");
    }
    return SelfTest(static_cast<int>(*broken_lemma),
                    static_cast<std::uint64_t>(*seeds), repro_out, config);
  }
  if (*prune_check) {
    if (*shrink_ellipse != 1.0) {
      return PruneSelfTest(*shrink_ellipse,
                           static_cast<std::uint64_t>(*seeds), repro_out,
                           config);
    }
    return PruneCheck(static_cast<std::uint64_t>(*first_seed),
                      static_cast<std::uint64_t>(*seeds), corpus_dir,
                      *shrink, repro_out, report_out, *verbose, config);
  }
  if (!replay.empty()) {
    return RunOneReplay(replay, *shrink, repro_out, report_out, config);
  }
  return Fuzz(static_cast<std::uint64_t>(*first_seed),
              static_cast<std::uint64_t>(*seeds), *shrink, repro_out,
              report_out, *verbose, config);
}

}  // namespace
}  // namespace ptar::check

int main(int argc, char** argv) {
  return ptar::check::Main(argc, argv);
}
