// ptar — command-line front end for the price-and-time-aware ridesharing
// library.
//
// Subcommands:
//   generate-network  synthesize a city and save it (ptar text format)
//   info              print statistics of a saved network
//   generate-requests synthesize a demand trace for a network (CSV)
//   simulate          replay a trace against a fleet with BA/SSA/DSA
//   match             answer one ad-hoc request and print the skyline
//
// Run `ptar <subcommand> --help` for per-command flags. All randomness is
// seed-driven; identical invocations produce identical output.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "check/fault_injection.h"
#include "common/flags.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "grid/grid_index.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/run_report.h"
#include "sim/trace_io.h"
#include "sim/workload.h"

namespace ptar::cli {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int FailUsage(const std::string& message) {
  std::fprintf(stderr, "error: %s\n(run 'ptar help' for usage)\n",
               message.c_str());
  return 2;
}

/// Rejects unrecognized flags (typo protection) after a command ran its
/// accessors.
int CheckUnused(const FlagParser& flags) {
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (unused.empty()) return 0;
  std::string joined;
  for (const std::string& name : unused) joined += " --" + name;
  return FailUsage("unknown flag(s):" + joined);
}

int Help() {
  std::printf(
      "ptar — price-and-time-aware dynamic ridesharing (ICDE 2018 "
      "reproduction)\n\n"
      "usage: ptar <command> [--flag=value ...]\n\n"
      "commands:\n"
      "  generate-network --out=FILE [--style=grid|ring] [--rows=N]\n"
      "      [--cols=N] [--spacing=M] [--rings=N] [--spokes=N] [--seed=N]\n"
      "  info --network=FILE\n"
      "  generate-requests --network=FILE --out=FILE [--count=N]\n"
      "      [--duration=SEC] [--riders=N] [--wait-min=MIN] [--epsilon=E]\n"
      "      [--hotspots=N] [--seed=N]\n"
      "  simulate --network=FILE --requests=FILE [--vehicles=N]\n"
      "      [--capacity=N] [--cell-size=M] [--adaptive] [--fraction=F]\n"
      "      [--policy=price|time|balanced|random] [--shadow] [--seed=N]\n"
      "      [--threads=N] [--distance_backend=dijkstra|ch]\n"
      "      [--prune=none|ellipse]\n"
      "      [--request_budget=N] [--deadline_ms=MS] [--inject=SPEC]\n"
      "      [--tree_max_branches=N]\n"
      "      [--engine_threads=N] [--wave_size=N] [--serial_check]\n"
      "      [--trace_out=FILE] [--report_out=FILE]\n"
      "      [--lifecycle_out=FILE] [--lifecycle_sample=F]\n"
      "      [--slo_p99_us=US] [--telemetry_window=SEC]\n"
      "  match --network=FILE --from=V --to=V [--riders=N] [--wait-min=MIN]\n"
      "      [--epsilon=E] [--vehicles=N] [--cell-size=M] [--seed=N]\n"
      "      [--distance_backend=dijkstra|ch] [--prune=none|ellipse]\n"
      "  help\n");
  return 0;
}

int GenerateNetwork(const FlagParser& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return FailUsage("generate-network requires --out=FILE");
  const std::string style = flags.GetString("style", "grid");
  const auto seed = flags.GetInt("seed", 42);
  if (!seed.ok()) return Fail(seed.status());

  StatusOr<RoadNetwork> graph = Status::Internal("unset");
  if (style == "grid") {
    GridCityOptions opts;
    const auto rows = flags.GetInt("rows", 40);
    const auto cols = flags.GetInt("cols", 40);
    const auto spacing = flags.GetDouble("spacing", 120.0);
    if (!rows.ok()) return Fail(rows.status());
    if (!cols.ok()) return Fail(cols.status());
    if (!spacing.ok()) return Fail(spacing.status());
    opts.rows = static_cast<int>(*rows);
    opts.cols = static_cast<int>(*cols);
    opts.spacing_meters = *spacing;
    opts.seed = static_cast<std::uint64_t>(*seed);
    graph = MakeGridCity(opts);
  } else if (style == "ring") {
    RingRadialCityOptions opts;
    const auto rings = flags.GetInt("rings", 16);
    const auto spokes = flags.GetInt("spokes", 32);
    if (!rings.ok()) return Fail(rings.status());
    if (!spokes.ok()) return Fail(spokes.status());
    opts.rings = static_cast<int>(*rings);
    opts.spokes = static_cast<int>(*spokes);
    opts.seed = static_cast<std::uint64_t>(*seed);
    graph = MakeRingRadialCity(opts);
  } else {
    return FailUsage("--style must be 'grid' or 'ring'");
  }
  if (const int rc = CheckUnused(flags); rc != 0) return rc;
  if (!graph.ok()) return Fail(graph.status());
  if (const Status st = SaveNetworkToFile(*graph, out); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %s: %zu vertices, %zu edges\n", out.c_str(),
              graph->num_vertices(), graph->num_edges());
  return 0;
}

int Info(const FlagParser& flags) {
  const std::string path = flags.GetString("network", "");
  if (path.empty()) return FailUsage("info requires --network=FILE");
  if (const int rc = CheckUnused(flags); rc != 0) return rc;
  auto graph = LoadNetworkFromFile(path);
  if (!graph.ok()) return Fail(graph.status());
  std::printf("network: %zu vertices, %zu edges, %s, %.2f MB in memory\n",
              graph->num_vertices(), graph->num_edges(),
              IsConnected(*graph) ? "connected" : "NOT connected",
              graph->MemoryBytes() / 1048576.0);
  Distance total = 0;
  Distance longest = 0;
  for (EdgeId e = 0; e < graph->num_edges(); ++e) {
    total += graph->EdgeWeight(e);
    longest = std::max(longest, graph->EdgeWeight(e));
  }
  std::printf("road length: %.1f km total, %.0f m mean segment, %.0f m "
              "longest segment\n", total / 1000.0,
              graph->num_edges() ? total / graph->num_edges() : 0.0,
              longest);
  return 0;
}

int GenerateRequests(const FlagParser& flags) {
  const std::string network = flags.GetString("network", "");
  const std::string out = flags.GetString("out", "");
  if (network.empty() || out.empty()) {
    return FailUsage("generate-requests requires --network=FILE --out=FILE");
  }
  auto graph = LoadNetworkFromFile(network);
  if (!graph.ok()) return Fail(graph.status());

  WorkloadOptions opts;
  const auto count = flags.GetInt("count", 200);
  const auto duration = flags.GetDouble("duration", 1800.0);
  const auto riders = flags.GetInt("riders", 1);
  const auto wait = flags.GetDouble("wait-min", 2.0);
  const auto epsilon = flags.GetDouble("epsilon", 0.2);
  const auto hotspots = flags.GetInt("hotspots", 4);
  const auto seed = flags.GetInt("seed", 7);
  for (const Status& st :
       {count.status(), duration.status(), riders.status(), wait.status(),
        epsilon.status(), hotspots.status(), seed.status()}) {
    if (!st.ok()) return Fail(st);
  }
  if (const int rc = CheckUnused(flags); rc != 0) return rc;
  opts.num_requests = static_cast<std::size_t>(*count);
  opts.duration_seconds = *duration;
  opts.riders = static_cast<int>(*riders);
  opts.waiting_minutes = *wait;
  opts.epsilon = *epsilon;
  opts.num_hotspots = static_cast<int>(*hotspots);
  opts.seed = static_cast<std::uint64_t>(*seed);

  auto requests = GenerateWorkload(*graph, opts);
  if (!requests.ok()) return Fail(requests.status());
  if (const Status st = SaveRequestsToFile(*requests, out); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %s: %zu requests over %.0f s\n", out.c_str(),
              requests->size(), opts.duration_seconds);
  return 0;
}

StatusOr<ChoicePolicy> ParsePolicy(const std::string& name) {
  if (name == "price") return ChoicePolicy::kMinPrice;
  if (name == "time") return ChoicePolicy::kMinTime;
  if (name == "balanced") return ChoicePolicy::kBalanced;
  if (name == "random") return ChoicePolicy::kRandom;
  return Status::InvalidArgument(
      "--policy must be price|time|balanced|random");
}

int Simulate(const FlagParser& flags) {
  const std::string network = flags.GetString("network", "");
  const std::string trace = flags.GetString("requests", "");
  if (network.empty() || trace.empty()) {
    return FailUsage("simulate requires --network=FILE --requests=FILE");
  }
  auto graph = LoadNetworkFromFile(network);
  if (!graph.ok()) return Fail(graph.status());
  auto requests = LoadRequestsFromFile(trace, *graph);
  if (!requests.ok()) return Fail(requests.status());

  const auto vehicles = flags.GetInt("vehicles", 400);
  const auto capacity = flags.GetInt("capacity", 4);
  const auto cell_size = flags.GetDouble("cell-size", 300.0);
  const auto fraction = flags.GetDouble("fraction", 0.16);
  const auto seed = flags.GetInt("seed", 13);
  const auto shadow = flags.GetBool("shadow", false);
  const auto threads = GetThreadsFlag(flags);
  const bool adaptive = flags.Has("adaptive");
  const std::string trace_out = flags.GetString("trace_out", "");
  const std::string report_out = flags.GetString("report_out", "");
  const std::string lifecycle_out = flags.GetString("lifecycle_out", "");
  const auto lifecycle_sample = flags.GetDouble("lifecycle_sample", 1.0);
  const auto slo_p99_us = flags.GetDouble("slo_p99_us", 0.0);
  const auto telemetry_window = flags.GetDouble("telemetry_window", 60.0);
  const auto policy = ParsePolicy(flags.GetString("policy", "price"));
  const auto backend =
      ParseDistanceBackend(flags.GetString("distance_backend", "dijkstra"));
  const auto request_budget = flags.GetInt("request_budget", 0);
  const auto deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  const auto tree_max_branches = flags.GetInt("tree_max_branches", 0);
  const std::string inject = flags.GetString("inject", "");
  const std::string prune_name = flags.GetString("prune", "none");
  const bool pipelined = flags.Has("engine_threads") ||
                         flags.Has("wave_size") || flags.Has("serial_check");
  const auto engine_threads = flags.GetInt("engine_threads", 1);
  const auto wave_size = flags.GetInt("wave_size", 0);
  const auto serial_check = flags.GetBool("serial_check", false);
  for (const Status& st :
       {vehicles.status(), capacity.status(), cell_size.status(),
        fraction.status(), seed.status(), shadow.status(),
        threads.status(), policy.status(), backend.status(),
        request_budget.status(), deadline_ms.status(),
        engine_threads.status(), wave_size.status(),
        serial_check.status(), lifecycle_sample.status(),
        slo_p99_us.status(), telemetry_window.status(),
        tree_max_branches.status()}) {
    if (!st.ok()) return Fail(st);
  }
  if (const int rc = CheckUnused(flags); rc != 0) return rc;
  // Validate everything that would otherwise hit a PTAR_CHECK inside the
  // engine or grid constructors: a bad flag is a usage error, not a crash.
  if (*vehicles < 1) return FailUsage("--vehicles must be >= 1");
  if (*capacity < 1) return FailUsage("--capacity must be >= 1");
  if (*cell_size <= 0.0) return FailUsage("--cell-size must be > 0");
  if (*fraction <= 0.0 || *fraction > 1.0) {
    return FailUsage("--fraction must be in (0, 1]");
  }
  if (*request_budget < 0) return FailUsage("--request_budget must be >= 0");
  if (*deadline_ms < 0.0) return FailUsage("--deadline_ms must be >= 0");
  if (*engine_threads < 1) return FailUsage("--engine_threads must be >= 1");
  if (flags.Has("tree_max_branches") && *tree_max_branches < 1) {
    return FailUsage("--tree_max_branches must be >= 1");
  }
  if (*wave_size < 0) return FailUsage("--wave_size must be >= 0");
  if (*lifecycle_sample < 0.0 || *lifecycle_sample > 1.0) {
    return FailUsage("--lifecycle_sample must be in [0, 1]");
  }
  if (*slo_p99_us < 0.0) return FailUsage("--slo_p99_us must be >= 0");
  PruneMode prune_mode = PruneMode::kNone;
  if (!ParsePruneMode(prune_name, &prune_mode)) {
    return FailUsage("--prune must be none|ellipse");
  }
  if (pipelined && *shadow) {
    return FailUsage(
        "--shadow is incompatible with the request-parallel pipeline "
        "(--engine_threads/--wave_size/--serial_check): shadow evaluation "
        "needs one world state per request");
  }
  check::FaultPlan fault_plan;
  if (!inject.empty()) {
    auto plan = check::ParseFaultPlan(inject);
    if (!plan.ok()) return FailUsage(plan.status().message());
    fault_plan = *plan;
  }

  StatusOr<GridIndex> grid =
      adaptive ? GridIndex::BuildAdaptive(&*graph, {})
               : GridIndex::Build(&*graph,
                                  {.cell_size_meters = *cell_size});
  if (!grid.ok()) return Fail(grid.status());

  EngineOptions eopts;
  eopts.num_vehicles = static_cast<int>(*vehicles);
  eopts.vehicle_capacity = static_cast<int>(*capacity);
  eopts.policy = *policy;
  eopts.seed = static_cast<std::uint64_t>(*seed);
  eopts.threads = *threads;
  eopts.engine_threads = static_cast<int>(*engine_threads);
  eopts.wave_size = static_cast<int>(*wave_size);
  eopts.distance_backend = *backend;
  eopts.overload.request_budget = static_cast<std::uint64_t>(*request_budget);
  eopts.overload.deadline_ms = *deadline_ms;
  eopts.overload.slo_p99_us = *slo_p99_us;
  eopts.telemetry.window_seconds = *telemetry_window;
  eopts.prune = prune_mode;
  if (flags.Has("tree_max_branches")) {
    eopts.tree_max_branches = static_cast<std::size_t>(*tree_max_branches);
  }
  Engine engine(&*graph, &*grid, eopts);
  // Timing fields in the lifecycle log are opt-in via the one mode that is
  // already documented as nondeterministic (a wall-clock deadline); the
  // default log is byte-identical across thread counts.
  obs::LifecycleRecorder lifecycle(
      obs::LifecycleOptions{.path = lifecycle_out,
                            .sample_rate = *lifecycle_sample,
                            .seed = static_cast<std::uint64_t>(*seed),
                            .include_timing = *deadline_ms > 0.0});
  if (lifecycle.enabled()) engine.SetLifecycleRecorder(&lifecycle);
  if (fault_plan.active()) {
    // Same plan for every matcher slot; the factory is invoked once per
    // oracle so each hook keeps its own stall counter.
    engine.SetFaultHookFactory([fault_plan](std::size_t) {
      return check::MakeFaultHook(fault_plan);
    });
  }

  BaselineMatcher ba;
  SsaMatcher ssa(*fraction);
  DsaMatcher dsa(*fraction);
  std::vector<Matcher*> matchers;
  if (*shadow) {
    matchers = {&ba, &ssa, &dsa};  // exact commits, all three measured
  } else {
    matchers = {&ssa};  // production setup: SSA commits
  }

  std::printf("simulating %zu requests, %d vehicles, %zu cells (%s)...\n",
              requests->size(), eopts.num_vehicles,
              grid->num_active_cells(), adaptive ? "quadtree" : "uniform");
  if (!trace_out.empty()) obs::TraceRecorder::Global().Start();
  RunStats stats;
  double run_micros = 0.0;
  std::vector<CommitRecord> commit_log;
  if (pipelined) {
    const double ssa_fraction = *fraction;
    const MatcherFactory make_matcher = [ssa_fraction] {
      return std::make_unique<SsaMatcher>(ssa_fraction);
    };
    Timer run_timer;
    stats = engine.RunPipelined(*requests, make_matcher,
                                *serial_check ? &commit_log : nullptr);
    run_micros = run_timer.ElapsedMicros();
  } else {
    Timer run_timer;
    stats = engine.Run(*requests, matchers);
    run_micros = run_timer.ElapsedMicros();
  }
  if (!trace_out.empty()) obs::TraceRecorder::Global().Stop();

  std::printf("\n%-5s %10s %10s %10s %10s %12s %9s %10s %8s\n", "algo",
              "mean(ms)", "p50(ms)", "p95(ms)", "verified", "compdists",
              "options", "precision", "recall");
  for (const MatcherAggregate& agg : stats.matchers) {
    std::printf("%-5s %10.3f %10.3f %10.3f %10.1f %12.1f %9.2f %10.4f "
                "%8.4f\n",
                agg.name.c_str(), agg.MeanMillis(),
                agg.latency_ms.Percentile(50), agg.latency_ms.Percentile(95),
                agg.MeanVerified(), agg.MeanCompdists(), agg.MeanOptions(),
                agg.MeanPrecision(), agg.MeanRecall());
  }
  std::printf("\nserved %llu / %zu, sharing rate %.3f, kinetic trees "
              "%.3f MB, grid %.3f MB\n",
              static_cast<unsigned long long>(stats.served),
              requests->size(), stats.SharingRate(),
              engine.KineticTreeMemoryBytes() / 1048576.0,
              grid->MemoryBytes() / 1048576.0);
  if (eopts.overload.request_budget > 0 || eopts.overload.deadline_ms > 0.0 ||
      fault_plan.active()) {
    std::printf("robustness: shed %llu, partial skylines %llu, ladder "
                "[full=%llu ssa=%llu grid=%llu shed=%llu]\n",
                static_cast<unsigned long long>(stats.shed_requests),
                static_cast<unsigned long long>(stats.partial_skylines),
                static_cast<unsigned long long>(stats.ladder_requests[0]),
                static_cast<unsigned long long>(stats.ladder_requests[1]),
                static_cast<unsigned long long>(stats.ladder_requests[2]),
                static_cast<unsigned long long>(stats.ladder_requests[3]));
  }
  if (prune_mode == PruneMode::kEllipse) {
    const std::uint64_t checked =
        engine.metrics().Counter("prune/ellipse_checked");
    const std::uint64_t pruned =
        engine.metrics().Counter("prune/ellipse_pruned");
    const std::uint64_t verified =
        engine.metrics().Counter("prune/verified_vehicles");
    const std::uint64_t denom = pruned + verified;
    std::printf("prune: ellipse checked %llu, pruned %llu, verified %llu "
                "(pruned share %.1f%%, alpha %.3f)\n",
                static_cast<unsigned long long>(checked),
                static_cast<unsigned long long>(pruned),
                static_cast<unsigned long long>(verified),
                denom > 0 ? 100.0 * static_cast<double>(pruned) /
                                static_cast<double>(denom)
                          : 0.0,
                engine.metrics().Counter("prune/alpha_ppm") / 1e6);
  }
  if (pipelined) {
    const double reqs_per_sec =
        run_micros > 0.0 ? requests->size() / (run_micros / 1e6) : 0.0;
    std::printf("pipeline: %d thread(s), wave %d, %llu waves, %llu "
                "conflicts, %llu rematches (%llu serial), %.1f requests/s\n",
                eopts.engine_threads, engine.ResolvedWaveSize(),
                static_cast<unsigned long long>(stats.waves),
                static_cast<unsigned long long>(stats.conflicts),
                static_cast<unsigned long long>(stats.rematches),
                static_cast<unsigned long long>(stats.serial_rematches),
                reqs_per_sec);
  }
  if (*serial_check) {
    // Canonical serial replay: a fresh engine, same seed and wave
    // structure, one matcher worker. The pipeline's determinism contract
    // says committed assignments must match the parallel run exactly.
    EngineOptions sopts = eopts;
    sopts.engine_threads = 1;
    sopts.wave_size = engine.ResolvedWaveSize();
    Engine serial_engine(&*graph, &*grid, sopts);
    if (fault_plan.active()) {
      serial_engine.SetFaultHookFactory([fault_plan](std::size_t) {
        return check::MakeFaultHook(fault_plan);
      });
    }
    const double ssa_fraction = *fraction;
    std::vector<CommitRecord> serial_log;
    serial_engine.RunPipelined(
        *requests,
        [ssa_fraction] { return std::make_unique<SsaMatcher>(ssa_fraction); },
        &serial_log);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < commit_log.size() || i < serial_log.size();
         ++i) {
      if (i >= commit_log.size() || i >= serial_log.size() ||
          !(commit_log[i] == serial_log[i])) {
        ++mismatches;
        if (mismatches <= 5) {
          const auto describe = [](const std::vector<CommitRecord>& log,
                                   std::size_t j) -> std::string {
            if (j >= log.size()) return "<missing>";
            const CommitRecord& r = log[j];
            if (r.shed) return "request " + std::to_string(r.request) +
                               " shed";
            if (!r.served) return "request " + std::to_string(r.request) +
                                  " unserved";
            return "request " + std::to_string(r.request) + " -> vehicle " +
                   std::to_string(r.vehicle);
          };
          std::fprintf(stderr, "serial_check mismatch at record %zu: "
                       "parallel %s vs serial %s\n", i,
                       describe(commit_log, i).c_str(),
                       describe(serial_log, i).c_str());
        }
      }
    }
    if (mismatches > 0) {
      std::fprintf(stderr,
                   "serial_check FAILED: %zu of %zu records differ from "
                   "the canonical serial replay\n",
                   mismatches,
                   std::max(commit_log.size(), serial_log.size()));
      return 1;
    }
    std::printf("serial_check OK: %zu committed records identical to the "
                "canonical serial replay\n", commit_log.size());
  }
  if (!trace_out.empty()) {
    if (const Status st = obs::TraceRecorder::Global().WriteJson(trace_out);
        !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote trace: %s (load in Perfetto / chrome://tracing)\n",
                trace_out.c_str());
  }
  if (!report_out.empty()) {
    const obs::RunReport report =
        BuildRunReport(stats, engine.metrics(), engine.telemetry().Export(),
                       "ptar_cli simulate");
    if (const Status st = obs::WriteRunReport(report, report_out); !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote report: %s (schema v%d)\n", report_out.c_str(),
                obs::kReportSchemaVersion);
  }
  if (lifecycle.enabled()) {
    if (const Status st = lifecycle.Flush(); !st.ok()) return Fail(st);
    std::printf("wrote lifecycle log: %s (%llu events, schema v%d)\n",
                lifecycle.path().c_str(),
                static_cast<unsigned long long>(lifecycle.events_recorded()),
                obs::kLifecycleSchemaVersion);
  }
  return 0;
}

int MatchOne(const FlagParser& flags) {
  const std::string network = flags.GetString("network", "");
  if (network.empty() || !flags.Has("from") || !flags.Has("to")) {
    return FailUsage("match requires --network=FILE --from=V --to=V");
  }
  auto graph = LoadNetworkFromFile(network);
  if (!graph.ok()) return Fail(graph.status());

  const auto from = flags.GetInt("from", 0);
  const auto to = flags.GetInt("to", 0);
  const auto riders = flags.GetInt("riders", 1);
  const auto wait = flags.GetDouble("wait-min", 3.0);
  const auto epsilon = flags.GetDouble("epsilon", 0.3);
  const auto vehicles = flags.GetInt("vehicles", 200);
  const auto cell_size = flags.GetDouble("cell-size", 300.0);
  const auto seed = flags.GetInt("seed", 13);
  const auto backend =
      ParseDistanceBackend(flags.GetString("distance_backend", "dijkstra"));
  const std::string prune_name = flags.GetString("prune", "none");
  for (const Status& st :
       {from.status(), to.status(), riders.status(), wait.status(),
        epsilon.status(), vehicles.status(), cell_size.status(),
        seed.status(), backend.status()}) {
    if (!st.ok()) return Fail(st);
  }
  if (const int rc = CheckUnused(flags); rc != 0) return rc;
  PruneMode prune_mode = PruneMode::kNone;
  if (!ParsePruneMode(prune_name, &prune_mode)) {
    return FailUsage("--prune must be none|ellipse");
  }
  if (!graph->IsValidVertex(static_cast<VertexId>(*from)) ||
      !graph->IsValidVertex(static_cast<VertexId>(*to)) || *from == *to) {
    return FailUsage("--from/--to must be distinct vertices of the network");
  }
  if (*vehicles < 1) return FailUsage("--vehicles must be >= 1");
  if (*cell_size <= 0.0) return FailUsage("--cell-size must be > 0");

  auto grid = GridIndex::Build(&*graph, {.cell_size_meters = *cell_size});
  if (!grid.ok()) return Fail(grid.status());
  EngineOptions eopts;
  eopts.num_vehicles = static_cast<int>(*vehicles);
  eopts.seed = static_cast<std::uint64_t>(*seed);
  eopts.distance_backend = *backend;
  eopts.prune = prune_mode;
  Engine engine(&*graph, &*grid, eopts);
  // Let the random fleet spread out a little before asking.
  engine.AdvanceTo(120.0);

  Request request;
  request.id = 0;
  request.start = static_cast<VertexId>(*from);
  request.destination = static_cast<VertexId>(*to);
  request.riders = static_cast<int>(*riders);
  request.max_wait_dist = *wait * 60.0 * kDefaultSpeedMetersPerSec;
  request.epsilon = *epsilon;
  request.submit_time = engine.now();

  BaselineMatcher exact;
  std::vector<Matcher*> matchers = {&exact};
  const auto outcome = engine.ProcessRequest(request, matchers);
  std::printf("%zu non-dominated option(s) for %lld -> %lld (%lld riders):\n",
              outcome.results[0].options.size(),
              static_cast<long long>(*from), static_cast<long long>(*to),
              static_cast<long long>(*riders));
  for (const Option& o : outcome.results[0].options) {
    std::printf("  vehicle %-5u pickup %7.0f m (%5.1f min)   price %10.2f\n",
                o.vehicle, o.pickup_dist,
                o.pickup_dist / kDefaultSpeedMetersPerSec / 60.0, o.price);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Help();
  const std::string command = argv[1];
  auto flags = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags.ok()) return Fail(flags.status());

  if (command == "help" || command == "--help") return Help();
  if (command == "generate-network") return GenerateNetwork(*flags);
  if (command == "info") return Info(*flags);
  if (command == "generate-requests") return GenerateRequests(*flags);
  if (command == "simulate") return Simulate(*flags);
  if (command == "match") return MatchOne(*flags);
  return FailUsage("unknown command '" + command + "'");
}

}  // namespace
}  // namespace ptar::cli

int main(int argc, char** argv) { return ptar::cli::Main(argc, argv); }
