// ptar_bench_gate — diffs two benchmark JSON artifacts metric-by-metric.
//
// Both files (a checked-in baseline and a fresh BENCH_*.json, or any two
// JSON documents made of objects/arrays/numbers, such as run reports) are
// flattened into slash-separated numeric leaves; every leaf present in
// either file is compared with a relative tolerance. Wall-clock metrics —
// any path segment the obs naming convention marks as timing (suffix
// "_us"/"_ms"/"_micros"), plus rate/speedup/host fields derived from wall
// time — are exempt by default, because they legitimately move between
// hosts; --include_timing gates them too. Exit 0 = within tolerance,
// exit 1 = regressions listed on stdout, exit 2 = usage.
//
//   ptar_bench_gate --baseline=FILE --candidate=FILE [--tolerance=0.10]
//                   [--include_timing]

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace ptar::cli {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

int FailUsage(const std::string& message) {
  std::fprintf(stderr,
               "error: %s\nusage: ptar_bench_gate --baseline=FILE "
               "--candidate=FILE [--tolerance=F] [--include_timing]\n",
               message.c_str());
  return 2;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open file: " + path);
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("error reading file: " + path);
  return content;
}

/// Flattens every numeric leaf of a JSON document into
/// "obj_key/arr_index/.../leaf_key" -> value. A structural scanner for the
/// well-formed JSON our writers emit, not a general validator: strings are
/// skipped (with escape handling), object keys become path segments, array
/// elements get their index as a segment.
StatusOr<std::map<std::string, double>> NumericLeaves(
    const std::string& json) {
  std::map<std::string, double> leaves;
  struct Frame {
    bool is_array = false;
    std::size_t index = 0;  ///< Next array element's index.
  };
  std::vector<Frame> stack;
  std::vector<std::string> path;
  std::string pending_key;
  bool have_key = false;

  const auto push_segment = [&] {
    if (!stack.empty() && stack.back().is_array) {
      path.push_back(std::to_string(stack.back().index));
    } else {
      path.push_back(have_key ? pending_key : std::string());
    }
    have_key = false;
  };
  const auto joined = [&] {
    std::string s;
    for (const std::string& seg : path) {
      if (!s.empty()) s += '/';
      s += seg;
    }
    return s;
  };

  std::size_t i = 0;
  const std::size_t n = json.size();
  while (i < n) {
    const char c = json[i];
    if (c == '"') {
      std::string text;
      ++i;
      while (i < n && json[i] != '"') {
        if (json[i] == '\\' && i + 1 < n) ++i;
        text += json[i++];
      }
      if (i >= n) return Status::InvalidArgument("unterminated string");
      ++i;  // closing quote
      std::size_t j = i;
      while (j < n && (json[j] == ' ' || json[j] == '\n' ||
                       json[j] == '\t' || json[j] == '\r')) {
        ++j;
      }
      if (j < n && json[j] == ':') {
        pending_key = text;
        have_key = true;
        i = j + 1;
      } else if (!stack.empty() && stack.back().is_array) {
        ++stack.back().index;  // string array element
      }
      continue;
    }
    if (c == '{' || c == '[') {
      push_segment();
      stack.push_back(Frame{c == '[', 0});
      ++i;
      continue;
    }
    if (c == '}' || c == ']') {
      if (stack.empty() || path.empty()) {
        return Status::InvalidArgument("unbalanced JSON nesting");
      }
      stack.pop_back();
      path.pop_back();
      if (!stack.empty() && stack.back().is_array) ++stack.back().index;
      ++i;
      continue;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      char* end = nullptr;
      const double value = std::strtod(json.c_str() + i, &end);
      push_segment();
      leaves[joined()] = value;
      path.pop_back();
      if (!stack.empty() && stack.back().is_array) ++stack.back().index;
      i = static_cast<std::size_t>(end - json.c_str());
      continue;
    }
    if (c == 't' || c == 'f' || c == 'n') {  // true / false / null
      if (!stack.empty() && stack.back().is_array) ++stack.back().index;
      while (i < n && std::isalpha(static_cast<unsigned char>(json[i]))) {
        ++i;
      }
      have_key = false;
      continue;
    }
    ++i;  // whitespace, ',', ':'
  }
  if (!stack.empty()) {
    return Status::InvalidArgument("unbalanced JSON nesting");
  }
  return leaves;
}

/// Metrics that legitimately differ between hosts/runs: any timing-suffixed
/// segment (obs convention), thread-pool internals, and wall-clock-derived
/// rates.
bool IsTimingPath(const std::string& path) {
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::string seg =
        path.substr(start, slash == std::string::npos ? std::string::npos
                                                      : slash - start);
    if (obs::MetricsRegistry::IsTimingMetric(seg) || seg == "pool" ||
        seg == "requests_per_sec" || seg == "speedup_vs_serial" ||
        seg == "host_cpus" || seg == "sum") {
      return true;
    }
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return false;
}

int Main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) return FailUsage(parsed.status().message());
  const FlagParser& flags = parsed.value();
  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string candidate_path = flags.GetString("candidate", "");
  const auto tolerance = flags.GetDouble("tolerance", 0.10);
  const auto include_timing = flags.GetBool("include_timing", false);
  if (!tolerance.ok()) return Fail(tolerance.status());
  if (!include_timing.ok()) return Fail(include_timing.status());
  if (baseline_path.empty() || candidate_path.empty()) {
    return FailUsage("both --baseline and --candidate are required");
  }
  if (*tolerance < 0.0) return FailUsage("--tolerance must be >= 0");
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (!unused.empty()) {
    std::string joined;
    for (const std::string& name : unused) joined += " --" + name;
    return FailUsage("unknown flag(s):" + joined);
  }

  const auto baseline_json = ReadFile(baseline_path);
  if (!baseline_json.ok()) return Fail(baseline_json.status());
  const auto candidate_json = ReadFile(candidate_path);
  if (!candidate_json.ok()) return Fail(candidate_json.status());
  const auto baseline = NumericLeaves(*baseline_json);
  if (!baseline.ok()) return Fail(baseline.status());
  const auto candidate = NumericLeaves(*candidate_json);
  if (!candidate.ok()) return Fail(candidate.status());

  std::size_t compared = 0;
  std::size_t skipped_timing = 0;
  std::size_t regressions = 0;
  const auto flag = [&](const std::string& metric, const char* what,
                        double base, double cand) {
    ++regressions;
    std::printf("REGRESSION %s: %s (baseline %.6g, candidate %.6g)\n",
                metric.c_str(), what, base, cand);
  };
  for (const auto& [metric, base] : *baseline) {
    if (!*include_timing && IsTimingPath(metric)) {
      ++skipped_timing;
      continue;
    }
    const auto it = candidate->find(metric);
    if (it == candidate->end()) {
      flag(metric, "missing from candidate", base, 0.0);
      continue;
    }
    ++compared;
    const double cand = it->second;
    const double denom =
        std::max({std::fabs(base), std::fabs(cand), 1e-12});
    const double rel = std::fabs(cand - base) / denom;
    if (rel > *tolerance) {
      char what[64];
      std::snprintf(what, sizeof(what), "relative delta %.2f%% > %.2f%%",
                    rel * 100.0, *tolerance * 100.0);
      flag(metric, what, base, cand);
    }
  }
  for (const auto& [metric, cand] : *candidate) {
    if (!*include_timing && IsTimingPath(metric)) continue;
    if (baseline->find(metric) == baseline->end()) {
      flag(metric, "missing from baseline", 0.0, cand);
    }
  }

  std::printf("bench gate: %zu metrics compared, %zu timing metrics "
              "skipped, %zu regression(s) at tolerance %.2f%%\n",
              compared, skipped_timing, regressions, *tolerance * 100.0);
  if (regressions > 0) {
    std::printf("bench gate FAILED: %s vs %s\n", candidate_path.c_str(),
                baseline_path.c_str());
    return 1;
  }
  std::printf("bench gate OK\n");
  return 0;
}

}  // namespace
}  // namespace ptar::cli

int main(int argc, char** argv) { return ptar::cli::Main(argc, argv); }
