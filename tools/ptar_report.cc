// ptar_report — renders a run report's windowed telemetry as a table.
//
// Reads a schema v1-v4 report JSON (ptar_cli --report_out, bench harness
// rows) and prints the headline summary plus, when the v4 "timeseries"
// block is present, one row per sim-time window: request rate, shed and
// conflict rates, commit-latency p50/p99, and degradation-ladder
// occupancy. With --slo_p99_us=US, windows whose p99 exceeds the target
// are flagged and counted — the offline view of the engine's SLO monitor.
//
//   ptar_report --report=FILE [--slo_p99_us=US]

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/report.h"

namespace ptar::cli {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int FailUsage(const std::string& message) {
  std::fprintf(stderr,
               "error: %s\nusage: ptar_report --report=FILE "
               "[--slo_p99_us=US]\n",
               message.c_str());
  return 2;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open report file: " + path);
  }
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("error reading report file: " + path);
  return content;
}

int Main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) return FailUsage(parsed.status().message());
  const FlagParser& flags = parsed.value();
  const std::string path = flags.GetString("report", "");
  const auto slo_p99_us = flags.GetDouble("slo_p99_us", 0.0);
  if (!slo_p99_us.ok()) return Fail(slo_p99_us.status());
  if (path.empty()) return FailUsage("ptar_report requires --report=FILE");
  if (*slo_p99_us < 0.0) return FailUsage("--slo_p99_us must be >= 0");
  const std::vector<std::string> unused = flags.UnusedFlags();
  if (!unused.empty()) {
    std::string joined;
    for (const std::string& name : unused) joined += " --" + name;
    return FailUsage("unknown flag(s):" + joined);
  }

  const auto json = ReadFile(path);
  if (!json.ok()) return Fail(json.status());
  const auto summary = obs::ParseReportSummary(*json);
  if (!summary.ok()) return Fail(summary.status());
  const auto timeseries = obs::ParseTimeseries(*json);
  if (!timeseries.ok()) return Fail(timeseries.status());

  std::printf("report %s (schema v%d)\n", path.c_str(),
              summary->schema_version);
  std::printf("served %llu, unserved %llu, shared %llu, shed %llu, "
              "partial %llu\n",
              static_cast<unsigned long long>(summary->served),
              static_cast<unsigned long long>(summary->unserved),
              static_cast<unsigned long long>(summary->shared),
              static_cast<unsigned long long>(summary->shed_requests),
              static_cast<unsigned long long>(summary->partial_skylines));
  if (summary->waves > 0) {
    std::printf("pipeline: %llu waves, %llu conflicts, %llu rematches "
                "(%llu serial)\n",
                static_cast<unsigned long long>(summary->waves),
                static_cast<unsigned long long>(summary->conflicts),
                static_cast<unsigned long long>(summary->rematches),
                static_cast<unsigned long long>(summary->serial_rematches));
  }

  if (timeseries->windows.empty()) {
    std::printf("no timeseries block (pre-v4 report or telemetry "
                "disabled)\n");
    return 0;
  }
  std::printf("\ntimeseries: %zu windows of %.0f s\n",
              timeseries->windows.size(), timeseries->window_seconds);
  std::printf("%10s %8s %8s %7s %7s %7s %10s %10s  %-17s %s\n", "start(s)",
              "requests", "req/s", "shed%", "confl", "rematch", "p50(us)",
              "p99(us)", "ladder f/s/g/x", "slo");
  std::size_t violations = 0;
  for (const obs::WindowSummary& w : timeseries->windows) {
    const double reqs_per_sec =
        timeseries->window_seconds > 0.0
            ? static_cast<double>(w.requests) / timeseries->window_seconds
            : 0.0;
    const double shed_pct =
        w.requests > 0
            ? 100.0 * static_cast<double>(w.shed) / w.requests
            : 0.0;
    const bool violated =
        *slo_p99_us > 0.0 && w.commit_p99_us > *slo_p99_us;
    if (violated) ++violations;
    char ladder[32];
    std::snprintf(ladder, sizeof(ladder), "%llu/%llu/%llu/%llu",
                  static_cast<unsigned long long>(w.ladder[0]),
                  static_cast<unsigned long long>(w.ladder[1]),
                  static_cast<unsigned long long>(w.ladder[2]),
                  static_cast<unsigned long long>(w.ladder[3]));
    std::printf("%10.0f %8llu %8.2f %7.2f %7llu %7llu %10.1f %10.1f  "
                "%-17s %s\n",
                w.start, static_cast<unsigned long long>(w.requests),
                reqs_per_sec, shed_pct,
                static_cast<unsigned long long>(w.conflicts),
                static_cast<unsigned long long>(w.rematches),
                w.commit_p50_us, w.commit_p99_us, ladder,
                violated ? "VIOLATED" : (*slo_p99_us > 0.0 ? "ok" : "-"));
  }
  if (*slo_p99_us > 0.0) {
    std::printf("\nslo: %zu of %zu windows violated p99 <= %.0f us\n",
                violations, timeseries->windows.size(), *slo_p99_us);
  }
  return 0;
}

}  // namespace
}  // namespace ptar::cli

int main(int argc, char** argv) { return ptar::cli::Main(argc, argv); }
