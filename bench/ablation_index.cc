// Ablation: uniform grid vs. quadtree (adaptive) partition
// (the paper's future-work index, Section IV.A / VIII).
//
// Run on a ring-radial city whose vertex density is highly non-uniform
// (dense downtown hub, sparse outskirts): the adaptive partition keeps
// leaves small where vehicles and requests concentrate without paying the
// uniform grid's quadratic cell-count blow-up.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "grid/grid_index.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/run_report.h"
#include "sim/workload.h"

using namespace ptar;

namespace {

void RunVariant(const char* label, const RoadNetwork& graph,
                const GridIndex& index,
                const std::vector<Request>& requests,
                bench::ObsSession& obs) {
  EngineOptions eopts;
  eopts.num_vehicles = 300;
  eopts.seed = 13;
  Engine engine(&graph, &index, eopts);
  BaselineMatcher ba;
  SsaMatcher ssa(0.16);
  DsaMatcher dsa(0.16);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  const RunStats stats = engine.Run(requests, matchers);
  obs.Add(label, BuildRunReport(stats, engine.metrics(),
                                std::string("bench ") + label));
  for (const MatcherAggregate& agg : stats.matchers) {
    std::printf("%-22s %-5s %10.3f %10.1f %12.1f %8.4f\n", label,
                agg.name.c_str(), agg.MeanMillis(), agg.MeanVerified(),
                agg.MeanCompdists(), agg.MeanRecall());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv, "ablation_index");
  std::printf("=== Ablation: uniform grid vs. quadtree partition ===\n");
  std::printf("(ring-radial city: dense hub, sparse outskirts)\n\n");

  RingRadialCityOptions copts;
  copts.rings = 24;
  copts.spokes = 48;
  copts.ring_spacing_meters = 160.0;
  auto graph = MakeRingRadialCity(copts);
  PTAR_CHECK_OK(graph.status());

  WorkloadOptions wopts;
  wopts.num_requests = 100;
  wopts.duration_seconds = 1200.0;
  wopts.seed = 7;
  wopts.num_hotspots = 2;
  wopts.hotspot_stddev_meters = 500.0;
  auto requests = GenerateWorkload(*graph, wopts);
  PTAR_CHECK_OK(requests.status());

  struct IndexRow {
    std::string label;
    StatusOr<GridIndex> index;
    double build_ms;
  };
  std::vector<IndexRow> rows;
  {
    Timer t;
    auto idx = GridIndex::Build(&*graph, {.cell_size_meters = 500.0});
    rows.push_back({"uniform-500m", std::move(idx), t.ElapsedMillis()});
  }
  {
    Timer t;
    auto idx = GridIndex::Build(&*graph, {.cell_size_meters = 250.0});
    rows.push_back({"uniform-250m", std::move(idx), t.ElapsedMillis()});
  }
  {
    Timer t;
    auto idx = GridIndex::BuildAdaptive(
        &*graph, {.max_vertices_per_cell = 48,
                  .min_cell_size_meters = 60.0});
    rows.push_back({"quadtree-48/leaf", std::move(idx), t.ElapsedMillis()});
  }

  std::printf("%-22s %12s %12s %12s\n", "index", "cells", "memory(MB)",
              "build(ms)");
  for (const IndexRow& row : rows) {
    PTAR_CHECK_OK(row.index.status());
    std::printf("%-22s %12zu %12.3f %12.1f\n", row.label.c_str(),
                row.index->num_active_cells(),
                row.index->MemoryBytes() / 1048576.0, row.build_ms);
  }

  std::printf("\n%-22s %-5s %10s %10s %12s %8s\n", "index", "algo",
              "time(ms)", "verified", "compdists", "recall");
  for (const IndexRow& row : rows) {
    RunVariant(row.label.c_str(), *graph, *row.index, *requests, obs);
  }
  return 0;
}
