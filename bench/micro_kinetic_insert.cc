// Micro-benchmark for kinetic-tree insertion (Section IV.B): enumerating
// all valid insertions of a new request into trees carrying 0-3 requests.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "graph/distance_oracle.h"
#include "graph/generators.h"
#include "kinetic/kinetic_tree.h"

namespace {

const ptar::RoadNetwork& City() {
  static const ptar::RoadNetwork* g = [] {
    ptar::GridCityOptions opts;
    opts.rows = 30;
    opts.cols = 30;
    opts.seed = 19;
    auto built = ptar::MakeGridCity(opts);
    PTAR_CHECK(built.ok());
    return new ptar::RoadNetwork(std::move(built).value());
  }();
  return *g;
}

ptar::Request RandomRequest(ptar::Rng& rng, ptar::RequestId id) {
  const std::size_t n = City().num_vertices();
  ptar::Request r;
  r.id = id;
  r.start = static_cast<ptar::VertexId>(rng.UniformIndex(n));
  do {
    r.destination = static_cast<ptar::VertexId>(rng.UniformIndex(n));
  } while (r.destination == r.start);
  r.riders = 1;
  r.max_wait_dist = 5000.0;
  r.epsilon = 0.8;
  return r;
}

void BM_EnumerateInsertions(benchmark::State& state) {
  const int preload = static_cast<int>(state.range(0));
  ptar::DistanceOracle oracle(&City());
  auto dist = [&oracle](ptar::VertexId a, ptar::VertexId b) {
    return oracle.Dist(a, b);
  };
  ptar::Rng rng(23 + preload);

  // Preload the tree with `preload` committed requests.
  ptar::KineticTree tree(
      0, static_cast<ptar::VertexId>(rng.UniformIndex(City().num_vertices())),
      6);
  ptar::RequestId next = 1;
  while (static_cast<int>(tree.assigned().size()) < preload) {
    const ptar::Request r = RandomRequest(rng, next++);
    const ptar::Distance direct = oracle.Dist(r.start, r.destination);
    const auto candidates =
        tree.EnumerateInsertions(r, direct, dist, ptar::InsertionHooks{});
    if (candidates.empty()) continue;
    PTAR_CHECK_OK(tree.Commit(r, direct, candidates[0].pickup_dist, dist));
  }

  const ptar::Request probe = RandomRequest(rng, 999);
  const ptar::Distance direct = oracle.Dist(probe.start, probe.destination);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.EnumerateInsertions(
        probe, direct, dist, ptar::InsertionHooks{}));
  }
  state.counters["branches"] = static_cast<double>(tree.num_branches());
}
BENCHMARK(BM_EnumerateInsertions)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
