// Contraction-hierarchy benchmark: preprocessing cost, shortcut counts, and
// point-to-point / one-to-many query latency vs plain Dijkstra on both
// synthetic city generators, written to BENCH_ch.json (same schema-versioned
// envelope as the other bench emitters).
//
// The headline number is the one-to-many speedup on the large perturbed
// grid: a matcher batch asks for a few dozen targets per request, which a
// Dijkstra sweep answers by draining most of the city while the CH bucket
// join touches only two hierarchy search spaces per target. The acceptance
// bar for this PR is >= 5x there.
//
// Startup verifies CH distances against Dijkstra (1e-6, see ch_query.h on
// floating-point association) on every benchmarked city before any timing.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/ch_graph.h"
#include "graph/ch_preprocessor.h"
#include "graph/ch_query.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "obs/json_writer.h"
#include "obs/report.h"
#include "obs/version.h"

namespace ptar {
namespace {

constexpr std::size_t kPointToPointPairs = 400;
constexpr std::size_t kBatches = 60;
constexpr std::size_t kBatchTargets = 48;  ///< Typical candidate-batch size.

struct CityCase {
  std::string name;
  RoadNetwork graph;
};

struct CityResult {
  std::string name;
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::size_t shortcuts = 0;
  double preprocess_ms = 0.0;
  double ch_memory_mib = 0.0;
  double dijkstra_p2p_us = 0.0;  ///< Mean per query.
  double ch_p2p_us = 0.0;
  double dijkstra_batch_us = 0.0;  ///< Mean per one-to-many batch.
  double ch_batch_us = 0.0;
  double p2p_speedup = 0.0;
  double batch_speedup = 0.0;
};

std::vector<VertexId> Sample(const RoadNetwork& g, std::size_t n,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<VertexId>(rng.UniformIndex(g.num_vertices())));
  }
  return out;
}

void Verify(const RoadNetwork& g, CHQuery& query, DijkstraEngine& dijkstra) {
  const std::vector<VertexId> a = Sample(g, 50, 1001);
  const std::vector<VertexId> b = Sample(g, 50, 1002);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Distance want = dijkstra.PointToPoint(a[i], b[i]);
    const Distance got = query.PointToPoint(a[i], b[i]);
    PTAR_CHECK(std::abs(got - want) <= 1e-6)
        << "CH mismatch " << a[i] << "->" << b[i] << ": " << got << " vs "
        << want;
  }
}

CityResult RunCity(const CityCase& city) {
  const RoadNetwork& g = city.graph;
  CityResult r;
  r.name = city.name;
  r.vertices = g.num_vertices();
  r.edges = g.num_edges();

  Timer pre_timer;
  const CHGraph ch = CHPreprocessor(CHPreprocessorOptions{}).Build(g);
  r.preprocess_ms = pre_timer.ElapsedMillis();
  r.shortcuts = ch.num_shortcuts();
  r.ch_memory_mib = static_cast<double>(ch.MemoryBytes()) / (1024.0 * 1024.0);

  CHQuery query(&ch);
  DijkstraEngine dijkstra(&g);
  Verify(g, query, dijkstra);

  const std::vector<VertexId> sources = Sample(g, kPointToPointPairs, 7);
  const std::vector<VertexId> targets = Sample(g, kPointToPointPairs, 8);

  Distance sink = 0.0;
  Timer timer;
  for (std::size_t i = 0; i < kPointToPointPairs; ++i) {
    sink += dijkstra.PointToPoint(sources[i], targets[i]);
  }
  r.dijkstra_p2p_us = timer.ElapsedMicros() / kPointToPointPairs;

  timer.Reset();
  for (std::size_t i = 0; i < kPointToPointPairs; ++i) {
    sink += query.PointToPoint(sources[i], targets[i]);
  }
  r.ch_p2p_us = timer.ElapsedMicros() / kPointToPointPairs;

  // One-to-many: the oracle sweep shape — one source, one candidate batch.
  std::vector<Distance> dists(kBatchTargets);
  timer.Reset();
  for (std::size_t i = 0; i < kBatches; ++i) {
    const std::vector<VertexId> batch =
        Sample(g, kBatchTargets, 100 + i);
    dijkstra.SingleSourceToTargets(sources[i], batch);
    for (const VertexId t : batch) sink += dijkstra.Dist(t);
  }
  r.dijkstra_batch_us = timer.ElapsedMicros() / kBatches;

  timer.Reset();
  for (std::size_t i = 0; i < kBatches; ++i) {
    const std::vector<VertexId> batch =
        Sample(g, kBatchTargets, 100 + i);
    query.OneToMany(sources[i], batch, dists);
    sink += dists[0];
  }
  r.ch_batch_us = timer.ElapsedMicros() / kBatches;

  if (sink == -1.0) std::printf("impossible\n");  // keep `sink` live

  r.p2p_speedup = r.dijkstra_p2p_us / r.ch_p2p_us;
  r.batch_speedup = r.dijkstra_batch_us / r.ch_batch_us;
  return r;
}

bool WriteJson(const std::string& path, const std::vector<CityResult>& rows) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("benchmark", "ch");
  w.KV("schema_version",
       static_cast<std::int64_t>(obs::kReportSchemaVersion));
  w.KV("git_describe", obs::GitDescribe());
  w.Key("rows");
  w.BeginArray();
  for (const CityResult& r : rows) {
    w.BeginObject();
    w.KV("label", r.name);
    w.KV("vertices", static_cast<std::uint64_t>(r.vertices));
    w.KV("edges", static_cast<std::uint64_t>(r.edges));
    w.KV("shortcuts", static_cast<std::uint64_t>(r.shortcuts));
    w.KV("preprocess_ms", r.preprocess_ms);
    w.KV("ch_memory_mib", r.ch_memory_mib);
    w.KV("dijkstra_p2p_us", r.dijkstra_p2p_us);
    w.KV("ch_p2p_us", r.ch_p2p_us);
    w.KV("p2p_speedup", r.p2p_speedup);
    w.KV("dijkstra_one_to_many_us", r.dijkstra_batch_us);
    w.KV("ch_one_to_many_us", r.ch_batch_us);
    w.KV("one_to_many_speedup", r.batch_speedup);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = w.TakeResult();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

int Main() {
  std::printf("=== micro_ch: contraction hierarchy vs Dijkstra ===\n");

  std::vector<CityCase> cities;
  {
    // The acceptance-bar city: large perturbed grid (~10k vertices).
    GridCityOptions opts;
    opts.rows = 100;
    opts.cols = 100;
    opts.spacing_meters = 100.0;
    opts.seed = 42;
    auto g = MakeGridCity(opts);
    PTAR_CHECK(g.ok()) << g.status();
    cities.push_back({"grid-large", std::move(g).value()});
  }
  {
    GridCityOptions opts;
    opts.rows = 40;
    opts.cols = 40;
    opts.spacing_meters = 120.0;
    opts.seed = 42;
    auto g = MakeGridCity(opts);
    PTAR_CHECK(g.ok()) << g.status();
    cities.push_back({"grid-base", std::move(g).value()});
  }
  {
    RingRadialCityOptions opts;
    opts.rings = 30;
    opts.spokes = 60;
    opts.seed = 42;
    auto g = MakeRingRadialCity(opts);
    PTAR_CHECK(g.ok()) << g.status();
    cities.push_back({"ring-radial", std::move(g).value()});
  }

  std::printf("%-12s %9s %9s %10s %12s %10s %10s %8s %12s %12s %8s\n",
              "city", "vertices", "shortcuts", "prep(ms)", "dij_p2p(us)",
              "ch_p2p(us)", "p2p_spdup", "|", "dij_1:n(us)", "ch_1:n(us)",
              "1:n_spdup");
  std::vector<CityResult> rows;
  for (const CityCase& city : cities) {
    rows.push_back(RunCity(city));
    const CityResult& r = rows.back();
    std::printf(
        "%-12s %9zu %9zu %10.1f %12.2f %10.2f %9.1fx %8s %12.1f %12.1f "
        "%7.1fx\n",
        r.name.c_str(), r.vertices, r.shortcuts, r.preprocess_ms,
        r.dijkstra_p2p_us, r.ch_p2p_us, r.p2p_speedup, "|",
        r.dijkstra_batch_us, r.ch_batch_us, r.batch_speedup);
  }

  if (!WriteJson("BENCH_ch.json", rows)) {
    std::fprintf(stderr, "failed to write BENCH_ch.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_ch.json\n");

  // The PR's acceptance bar: >= 5x one-to-many on the large grid.
  if (rows[0].batch_speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: one-to-many speedup %.2fx on %s is below the 5x "
                 "bar\n",
                 rows[0].batch_speedup, rows[0].name.c_str());
    return 1;
  }
  std::printf("one-to-many speedup on %s: %.1fx (bar: 5x)\n",
              rows[0].name.c_str(), rows[0].batch_speedup);
  return 0;
}

}  // namespace
}  // namespace ptar

int main() { return ptar::Main(); }
