// Figure 9: performance cost vs. the service constraint epsilon
// (paper sweeps 0.2-0.6).

#include <cstdio>
#include <string>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ptar::bench;
  PrintBanner("Figure 9", "cost vs. service constraint epsilon");

  BenchConfig base;
  ObsSession obs(argc, argv, "fig09_service_constraint");
  Harness harness(base);
  harness.AttachObs(&obs);

  PrintCostHeader("epsilon");
  for (const double eps : {0.2, 0.3, 0.4, 0.5, 0.6}) {
    BenchConfig cfg = base;
    cfg.epsilon = eps;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", eps);
    PrintCostRow(label, harness.Run(cfg, label));
  }
  return 0;
}
