// Figure 8: performance cost vs. the waiting time w (paper sweeps 2-6 min).

#include <string>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ptar::bench;
  PrintBanner("Figure 8", "cost vs. waiting time w (minutes)");

  BenchConfig base;
  ObsSession obs(argc, argv, "fig08_waiting_time");
  Harness harness(base);
  harness.AttachObs(&obs);

  PrintCostHeader("w(min)");
  for (const double w : {2.0, 3.0, 4.0, 5.0, 6.0}) {
    BenchConfig cfg = base;
    cfg.waiting_minutes = w;
    const std::string label = std::to_string(static_cast<int>(w));
    PrintCostRow(label, harness.Run(cfg, label));
  }
  return 0;
}
