// Micro-benchmark: one batched one-to-many sweep (DistanceOracle::BatchDist)
// vs the equivalent sequence of point-to-point Dist calls, on the standard
// synthetic grid city. Targets are uniform random vertices, a pessimistic
// stand-in for a request's candidate batch (real candidate sets cluster
// around the request's start cell, which favors the sweep further).
//
// Startup verifies that both paths return bit-identical distances and count
// identical compdists before any timing runs.

#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/random.h"
#include "graph/distance_oracle.h"
#include "graph/generators.h"

namespace ptar {
namespace {

const RoadNetwork& City() {
  static const RoadNetwork* city = [] {
    GridCityOptions opts;
    opts.rows = 40;
    opts.cols = 40;
    opts.spacing_meters = 120.0;
    opts.seed = 42;
    auto built = MakeGridCity(opts);
    PTAR_CHECK(built.ok()) << built.status();
    return new RoadNetwork(std::move(built).value());
  }();
  return *city;
}

std::vector<VertexId> PickTargets(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> targets;
  targets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    targets.push_back(
        static_cast<VertexId>(rng.UniformIndex(City().num_vertices())));
  }
  return targets;
}

VertexId PickSource() {
  return static_cast<VertexId>(City().num_vertices() / 2);
}

void BM_SerialDist(benchmark::State& state) {
  const auto targets =
      PickTargets(static_cast<std::size_t>(state.range(0)), 7);
  const VertexId source = PickSource();
  DistanceOracle oracle(&City());
  for (auto _ : state) {
    oracle.ClearCache();
    Distance sum = 0.0;
    for (const VertexId t : targets) sum += oracle.Dist(source, t);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(targets.size()));
}
BENCHMARK(BM_SerialDist)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_BatchDist(benchmark::State& state) {
  const auto targets =
      PickTargets(static_cast<std::size_t>(state.range(0)), 7);
  const VertexId source = PickSource();
  DistanceOracle oracle(&City());
  std::vector<Distance> dists;
  for (auto _ : state) {
    oracle.ClearCache();
    oracle.BatchDist(source, targets, &dists);
    benchmark::DoNotOptimize(dists.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(targets.size()));
}
BENCHMARK(BM_BatchDist)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

/// The acceptance bar for the batch path: identical bits, identical
/// compdists, for every benchmarked batch size.
void VerifyBatchMatchesSerial() {
  const VertexId source = PickSource();
  for (const std::size_t n : {8u, 32u, 128u, 512u}) {
    const auto targets = PickTargets(n, 7);
    DistanceOracle serial(&City());
    DistanceOracle batched(&City());
    std::vector<Distance> expected;
    expected.reserve(n);
    for (const VertexId t : targets) {
      expected.push_back(serial.Dist(source, t));
    }
    std::vector<Distance> got;
    batched.BatchDist(source, targets, &got);
    PTAR_CHECK(got.size() == expected.size());
    for (std::size_t i = 0; i < n; ++i) {
      PTAR_CHECK(got[i] == expected[i])
          << "bit mismatch at target " << i << " (n=" << n << ")";
    }
    PTAR_CHECK(batched.compdists() == serial.compdists())
        << "compdist mismatch at n=" << n;
  }
  std::printf("verified: BatchDist == serial Dist (bits and compdists) "
              "for n in {8, 32, 128, 512}\n");
}

}  // namespace
}  // namespace ptar

int main(int argc, char** argv) {
  ptar::VerifyBatchMatchesSerial();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
