#include "bench/harness.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json_writer.h"
#include "obs/trace.h"
#include "obs/version.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/dsa_matcher.h"
#include "rideshare/ssa_matcher.h"
#include "sim/run_report.h"

namespace ptar::bench {

ObsSession* ObsSession::active_ = nullptr;

void ObsSession::FlushActiveOnSignal(int sig) {
  // Best-effort, not strictly async-signal-safe (Flush allocates): losing
  // the buffered telemetry of an interrupted or crashing bench is worse
  // than the theoretical reentrancy hazard on this diagnostics-only path.
  if (active_ != nullptr) active_->Flush();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void ObsSession::FlushActiveAtExit() {
  if (active_ != nullptr) active_->Flush();
}

ObsSession::ObsSession(int argc, char* const* argv,
                       const std::string& bench_name)
    : bench_name_(bench_name) {
  std::string lifecycle_out;
  double lifecycle_sample = 1.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace_out=", 12) == 0) {
      trace_out_ = arg + 12;
    } else if (std::strncmp(arg, "--report_out=", 13) == 0) {
      report_out_ = arg + 13;
    } else if (std::strncmp(arg, "--lifecycle_out=", 16) == 0) {
      lifecycle_out = arg + 16;
    } else if (std::strncmp(arg, "--lifecycle_sample=", 19) == 0) {
      lifecycle_sample = std::strtod(arg + 19, nullptr);
    }
  }
  if (!trace_out_.empty()) obs::TraceRecorder::Global().Start();
  if (!lifecycle_out.empty()) {
    lifecycle_ = std::make_unique<obs::LifecycleRecorder>(
        obs::LifecycleOptions{.path = lifecycle_out,
                              .sample_rate = lifecycle_sample});
  }
  active_ = this;
  static bool hooks_installed = false;
  if (!hooks_installed) {
    hooks_installed = true;
    std::atexit(&ObsSession::FlushActiveAtExit);
    for (const int sig : {SIGINT, SIGTERM, SIGSEGV, SIGABRT}) {
      std::signal(sig, &ObsSession::FlushActiveOnSignal);
    }
  }
}

void ObsSession::Add(const std::string& label, obs::RunReport report) {
  if (report_out_.empty()) return;
  rows_.emplace_back(label, std::move(report));
}

ObsSession::~ObsSession() {
  Flush();
  if (active_ == this) active_ = nullptr;
}

void ObsSession::Flush() {
  if (flushed_) return;
  flushed_ = true;
  if (lifecycle_ != nullptr && lifecycle_->enabled()) {
    const Status st = lifecycle_->Flush();
    if (st.ok()) {
      std::printf("wrote lifecycle log: %s (%llu events)\n",
                  lifecycle_->path().c_str(),
                  static_cast<unsigned long long>(
                      lifecycle_->events_recorded()));
    } else {
      std::fprintf(stderr, "lifecycle write failed: %s\n",
                   st.ToString().c_str());
    }
  }
  if (!trace_out_.empty()) {
    obs::TraceRecorder::Global().Stop();
    const Status st = obs::TraceRecorder::Global().WriteJson(trace_out_);
    if (st.ok()) {
      std::printf("wrote trace: %s\n", trace_out_.c_str());
    } else {
      std::fprintf(stderr, "trace write failed: %s\n",
                   st.ToString().c_str());
    }
  }
  if (report_out_.empty()) return;
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema_version",
            static_cast<std::int64_t>(obs::kReportSchemaVersion));
  writer.KV("git_describe", obs::GitDescribe());
  writer.KV("bench", bench_name_);
  writer.Key("rows");
  writer.BeginArray();
  for (const auto& [label, report] : rows_) {
    writer.BeginObject();
    writer.KV("label", label);
    obs::WriteRunReportFieldsJson(writer, report);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  const std::string json = writer.TakeResult();
  std::FILE* f = std::fopen(report_out_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open report file: %s\n",
                 report_out_.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote report: %s (schema v%d)\n", report_out_.c_str(),
              obs::kReportSchemaVersion);
}

Harness::Harness(const BenchConfig& base) : base_(base) {
  GridCityOptions copts;
  copts.rows = base.city_rows;
  copts.cols = base.city_cols;
  copts.spacing_meters = base.spacing_meters;
  copts.seed = base.city_seed;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok()) << g.status();
  graph_ = std::move(g).value();
}

const GridIndex& Harness::GridFor(double cell_size) {
  const long long key = static_cast<long long>(cell_size * 1000.0);
  auto it = grids_.find(key);
  if (it == grids_.end()) {
    auto built = GridIndex::Build(&graph_, {.cell_size_meters = cell_size});
    PTAR_CHECK(built.ok()) << built.status();
    it = grids_
             .emplace(key, std::make_unique<GridIndex>(
                               std::move(built).value()))
             .first;
  }
  return *it->second;
}

BenchRow Harness::Run(const BenchConfig& cfg, const std::string& label) {
  BaselineMatcher ba;
  SsaMatcher ssa(cfg.verified_grid_fraction);
  DsaMatcher dsa(cfg.verified_grid_fraction);
  std::vector<Matcher*> matchers = {&ba, &ssa, &dsa};
  return RunWith(cfg, label, matchers);
}

BenchRow Harness::RunWith(const BenchConfig& cfg, const std::string& label,
                          std::span<ptar::Matcher* const> matchers) {
  PTAR_CHECK(cfg.city_rows == base_.city_rows &&
             cfg.city_cols == base_.city_cols &&
             cfg.city_seed == base_.city_seed)
      << "the city shape is fixed per harness";

  const GridIndex& grid = GridFor(cfg.cell_size_meters);

  WorkloadOptions wopts;
  wopts.num_requests = cfg.num_requests;
  wopts.duration_seconds = cfg.duration_seconds;
  wopts.riders = cfg.riders;
  wopts.waiting_minutes = cfg.waiting_minutes;
  wopts.epsilon = cfg.epsilon;
  wopts.seed = cfg.workload_seed;
  auto requests = GenerateWorkload(graph_, wopts);
  PTAR_CHECK(requests.ok()) << requests.status();

  EngineOptions eopts;
  eopts.num_vehicles = cfg.num_vehicles;
  eopts.vehicle_capacity = cfg.vehicle_capacity;
  eopts.seed = cfg.engine_seed;
  eopts.threads = cfg.threads;
  eopts.distance_backend = cfg.distance_backend;
  Engine engine(&graph_, &grid, eopts);
  if (obs_ != nullptr && obs_->lifecycle() != nullptr) {
    engine.SetLifecycleRecorder(obs_->lifecycle());
  }

  BenchRow row;
  row.label = label;
  row.stats = engine.Run(*requests, matchers);
  row.grid_memory_bytes = grid.MemoryBytes();
  row.tree_memory_bytes = engine.KineticTreeMemoryBytes();
  if (obs_ != nullptr) {
    obs_->Add(label, BuildRunReport(row.stats, engine.metrics(),
                                    engine.telemetry().Export(),
                                    "bench " + label));
  }
  return row;
}

void PrintCostHeader(const std::string& param_name) {
  std::printf("%-14s %-5s %12s %10s %12s %9s\n", param_name.c_str(), "algo",
              "time(ms)", "verified", "compdists", "options");
}

void PrintCostRow(const std::string& param_value, const BenchRow& row) {
  for (const MatcherAggregate& agg : row.stats.matchers) {
    std::printf("%-14s %-5s %12.3f %10.1f %12.1f %9.2f\n",
                param_value.c_str(), agg.name.c_str(), agg.MeanMillis(),
                agg.MeanVerified(), agg.MeanCompdists(), agg.MeanOptions());
  }
}

bool WriteMatchingJson(const std::string& path,
                       const std::vector<BenchRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n  \"benchmark\": \"matching\",\n"
               "  \"schema_version\": %d,\n"
               "  \"git_describe\": \"%s\",\n"
               "  \"rows\": [\n",
               obs::kReportSchemaVersion,
               obs::JsonWriter::Escape(obs::GitDescribe()).c_str());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const BenchRow& row = rows[r];
    std::fprintf(f,
                 "    {\n      \"label\": \"%s\",\n"
                 "      \"served\": %llu,\n"
                 "      \"unserved\": %llu,\n"
                 "      \"shared\": %llu,\n"
                 "      \"matchers\": [\n",
                 row.label.c_str(),
                 static_cast<unsigned long long>(row.stats.served),
                 static_cast<unsigned long long>(row.stats.unserved),
                 static_cast<unsigned long long>(row.stats.shared));
    for (std::size_t m = 0; m < row.stats.matchers.size(); ++m) {
      const MatcherAggregate& agg = row.stats.matchers[m];
      std::fprintf(
          f,
          "        {\"name\": \"%s\", \"requests\": %llu, "
          "\"mean_ms\": %.6f, \"mean_compdists\": %.3f, "
          "\"mean_verified\": %.3f, \"mean_options\": %.3f, "
          "\"total_compdists\": %llu, \"total_verified\": %llu, "
          "\"precision\": %.6f, \"recall\": %.6f}%s\n",
          agg.name.c_str(), static_cast<unsigned long long>(agg.requests),
          agg.MeanMillis(), agg.MeanCompdists(), agg.MeanVerified(),
          agg.MeanOptions(),
          static_cast<unsigned long long>(agg.totals.compdists),
          static_cast<unsigned long long>(agg.totals.verified_vehicles),
          agg.MeanPrecision(), agg.MeanRecall(),
          m + 1 < row.stats.matchers.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

void PrintBanner(const std::string& experiment, const std::string& what) {
  std::printf("=== %s: %s ===\n", experiment.c_str(), what.c_str());
  std::printf(
      "(scaled reproduction; shapes and relative orderings match the "
      "paper, absolute numbers do not — see EXPERIMENTS.md)\n\n");
}

}  // namespace ptar::bench
