// Figure 7: performance cost vs. the number of verified grid cells
// (paper Section VII.A). Sweeps the fraction of cells SSA / DSA visit
// (8 %, 16 %, 32 %, 64 %, 100 %); BA ignores the grid and stays flat.

#include <string>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ptar::bench;
  PrintBanner("Figure 7", "cost vs. number of verified grid cells (%)");

  BenchConfig base;
  ObsSession obs(argc, argv, "fig07_verified_grids");
  Harness harness(base);
  harness.AttachObs(&obs);

  PrintCostHeader("verified(%)");
  for (const double fraction : {0.08, 0.16, 0.32, 0.64, 1.0}) {
    BenchConfig cfg = base;
    cfg.verified_grid_fraction = fraction;
    const std::string label = std::to_string(static_cast<int>(
        fraction * 100.0 + 0.5));
    const BenchRow row = harness.Run(cfg, label);
    PrintCostRow(label, row);
  }
  return 0;
}
