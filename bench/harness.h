// Shared experiment harness for the paper-reproduction benches.
//
// Every bench binary (one per table / figure of Section VII) drives the same
// pipeline: synthetic city -> grid index -> fleet engine -> request stream
// -> shadow evaluation of BA / SSA / DSA on identical state. The harness
// caches the city and the per-cell-size grid indexes so a parameter sweep
// only rebuilds what the swept parameter actually changes.
//
// Scaling note (see DESIGN.md): the paper's testbed is the Shanghai network
// (122k vertices) with 12K-20K taxis and 1000-9000 requests; this harness
// keeps the paper's ratios on a single-core-friendly city. Absolute numbers
// differ; the qualitative relationships are what the benches reproduce.

#ifndef PTAR_BENCH_HARNESS_H_
#define PTAR_BENCH_HARNESS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "grid/grid_index.h"
#include "obs/lifecycle.h"
#include "obs/report.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace ptar::bench {

struct BenchConfig {
  // City shape (fixed per harness instance).
  int city_rows = 40;
  int city_cols = 40;
  double spacing_meters = 120.0;
  std::uint64_t city_seed = 42;

  // Swept parameters (paper Table II, scaled).
  double cell_size_meters = 300.0;
  int num_vehicles = 400;
  int vehicle_capacity = 4;
  std::size_t num_requests = 100;
  double duration_seconds = 1200.0;
  double waiting_minutes = 2.0;
  double epsilon = 0.2;
  int riders = 1;
  double verified_grid_fraction = 0.16;
  std::uint64_t workload_seed = 7;
  std::uint64_t engine_seed = 13;
  /// Worker threads for shadow-matcher evaluation (EngineOptions::threads).
  int threads = 1;
  /// Oracle backend (EngineOptions::distance_backend); kCH pays a one-time
  /// preprocessing cost per engine and then answers each sweep with bucket
  /// queries instead of a Dijkstra drain.
  DistanceBackend distance_backend = DistanceBackend::kDijkstra;
};

struct BenchRow {
  std::string label;
  RunStats stats;                 ///< Per-matcher aggregates (BA, SSA, DSA).
  std::size_t grid_memory_bytes = 0;
  std::size_t tree_memory_bytes = 0;
};

/// Optional observability side channel for a bench binary. Construct from
/// main's argv: recognizes --trace_out=FILE (record a Chrome trace of the
/// whole bench), --report_out=FILE (dump one versioned run report per
/// bench row), and --lifecycle_out=FILE / --lifecycle_sample=F (per-request
/// lifecycle JSONL, see obs/lifecycle.h); all other arguments are ignored,
/// so benches stay zero-config by default. Attach to a Harness and every
/// Run()/RunWith() adds a row; the destructor writes the requested files.
///
/// Abnormal-exit contract: the session registers atexit and fatal-signal
/// hooks (SIGINT/SIGTERM/SIGSEGV/SIGABRT) that call Flush(), so a bench
/// killed mid-sweep — or crashed by the bug the trace was meant to catch —
/// still writes whatever trace/report/lifecycle data it buffered. Flush()
/// is idempotent; the signal path is best-effort (it allocates), which is
/// the right trade for a diagnostics side channel.
class ObsSession {
 public:
  ObsSession(int argc, char* const* argv, const std::string& bench_name);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Records one bench row's report (called by Harness).
  void Add(const std::string& label, obs::RunReport report);

  /// The per-request lifecycle recorder, or null when --lifecycle_out was
  /// not given. Attach to an engine via Engine::SetLifecycleRecorder.
  obs::LifecycleRecorder* lifecycle() {
    return lifecycle_ != nullptr && lifecycle_->enabled() ? lifecycle_.get()
                                                          : nullptr;
  }

  /// Writes all requested outputs (trace, report rows, lifecycle log).
  /// Idempotent: the first call wins, later calls (destructor after an
  /// explicit flush, atexit after the destructor) are no-ops.
  void Flush();

 private:
  static void FlushActiveOnSignal(int sig);
  static void FlushActiveAtExit();

  static ObsSession* active_;  ///< The session signal/atexit hooks flush.

  std::string bench_name_;
  std::string trace_out_;
  std::string report_out_;
  std::vector<std::pair<std::string, obs::RunReport>> rows_;
  std::unique_ptr<obs::LifecycleRecorder> lifecycle_;
  bool flushed_ = false;
};

class Harness {
 public:
  explicit Harness(const BenchConfig& base);

  /// Routes every subsequent Run()/RunWith() row into `session` (which must
  /// outlive the harness). Null detaches.
  void AttachObs(ObsSession* session) { obs_ = session; }

  /// Runs one parameter point with the standard BA / SSA / DSA trio. Only
  /// the swept fields of `cfg` may differ from the base config; the city
  /// shape must match.
  BenchRow Run(const BenchConfig& cfg, const std::string& label);

  /// Same, with a caller-supplied matcher list (the first matcher commits
  /// and is the precision/recall reference). Used by the ablation bench.
  BenchRow RunWith(const BenchConfig& cfg, const std::string& label,
                   std::span<ptar::Matcher* const> matchers);

  const RoadNetwork& graph() const { return graph_; }

 private:
  const GridIndex& GridFor(double cell_size);

  BenchConfig base_;
  RoadNetwork graph_;
  std::map<long long, std::unique_ptr<GridIndex>> grids_;  // key: size in mm
  ObsSession* obs_ = nullptr;
};

/// Prints the standard per-row report: one line per algorithm with mean
/// running time, verified vehicles, compdists, and options per request.
void PrintCostHeader(const std::string& param_name);
void PrintCostRow(const std::string& param_value, const BenchRow& row);

/// Frees benches from duplicating the figure banner boilerplate.
void PrintBanner(const std::string& experiment, const std::string& what);

/// Writes the rows as machine-readable JSON (one object per row: label,
/// served/unserved/shared counts, and per-matcher mean ms / compdists /
/// verified / options plus precision and recall) so successive runs of the
/// bench suite can be diffed by tooling. Returns false if the file cannot
/// be written.
bool WriteMatchingJson(const std::string& path,
                       const std::vector<BenchRow>& rows);

}  // namespace ptar::bench

#endif  // PTAR_BENCH_HARNESS_H_
