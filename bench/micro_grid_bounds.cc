// Micro-benchmarks for the grid-index bounds: the O(1) ldist and the
// O(|BV|) udist that replace full shortest-path computations during pruning
// (Section IV.A), plus index construction cost per cell size.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "graph/generators.h"
#include "grid/grid_index.h"

namespace {

const ptar::RoadNetwork& City() {
  static const ptar::RoadNetwork* g = [] {
    ptar::GridCityOptions opts;
    opts.rows = 40;
    opts.cols = 40;
    opts.seed = 11;
    auto built = ptar::MakeGridCity(opts);
    PTAR_CHECK(built.ok());
    return new ptar::RoadNetwork(std::move(built).value());
  }();
  return *g;
}

const ptar::GridIndex& Index() {
  static const ptar::GridIndex* index = [] {
    auto built = ptar::GridIndex::Build(&City(), {.cell_size_meters = 300.0});
    PTAR_CHECK(built.ok());
    return new ptar::GridIndex(std::move(built).value());
  }();
  return *index;
}

void BM_LowerBound(benchmark::State& state) {
  const ptar::GridIndex& index = Index();
  ptar::Rng rng(5);
  const std::size_t n = City().num_vertices();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LowerBound(
        static_cast<ptar::VertexId>(rng.UniformIndex(n)),
        static_cast<ptar::VertexId>(rng.UniformIndex(n))));
  }
}
BENCHMARK(BM_LowerBound);

void BM_UpperBound(benchmark::State& state) {
  const ptar::GridIndex& index = Index();
  ptar::Rng rng(6);
  const std::size_t n = City().num_vertices();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.UpperBound(
        static_cast<ptar::VertexId>(rng.UniformIndex(n)),
        static_cast<ptar::VertexId>(rng.UniformIndex(n))));
  }
}
BENCHMARK(BM_UpperBound);

void BM_LowerBoundToCell(benchmark::State& state) {
  const ptar::GridIndex& index = Index();
  ptar::Rng rng(7);
  const std::size_t n = City().num_vertices();
  const auto cells = index.active_cells();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LowerBoundToCell(
        static_cast<ptar::VertexId>(rng.UniformIndex(n)),
        cells[rng.UniformIndex(cells.size())]));
  }
}
BENCHMARK(BM_LowerBoundToCell);

void BM_BuildIndex(benchmark::State& state) {
  const double cell_size = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto built =
        ptar::GridIndex::Build(&City(), {.cell_size_meters = cell_size});
    PTAR_CHECK(built.ok());
    benchmark::DoNotOptimize(built->num_active_cells());
  }
}
BENCHMARK(BM_BuildIndex)->Arg(600)->Arg(300)->Arg(160)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
