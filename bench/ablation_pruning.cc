// Ablation: contribution of each pruning family to SSA's cost
// (design-choice ablation from DESIGN.md — not a paper table).
//
// All variants return the same option set (pruning is results-preserving by
// Lemmas 1-11); only the work differs. Variants, all at the default 16 %
// verified grid cells:
//   full      cell + edge + insertion-hook pruning (production SSA)
//   -cells    cell-level pruning off (Lemmas 2, 4, 6)
//   -edges    per-vehicle/edge filters off (Lemmas 1, 3, 5)
//   -hooks    lazy in-insertion pruning off (Lemmas 3, 5, 7, 9, 11)
//   none      no pruning (index only used for the search order)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/ssa_matcher.h"

int main(int argc, char** argv) {
  using namespace ptar;
  using namespace ptar::bench;
  PrintBanner("Ablation", "pruning-family contribution to SSA cost");

  BenchConfig base;
  ObsSession obs(argc, argv, "ablation_pruning");
  Harness harness(base);
  harness.AttachObs(&obs);

  struct Variant {
    const char* label;
    PruningConfig config;
  };
  const std::vector<Variant> variants = {
      {"full", {true, true, true}},
      {"-cells", {false, true, true}},
      {"-edges", {true, false, true}},
      {"-hooks", {true, true, false}},
      {"none", {false, false, false}},
  };

  std::printf("%-8s %12s %10s %12s %9s %8s\n", "variant", "time(ms)",
              "verified", "compdists", "options", "recall");
  for (const Variant& variant : variants) {
    BaselineMatcher ba;  // commits; keeps world state identical per variant
    SsaMatcher ssa(base.verified_grid_fraction, variant.config);
    std::vector<Matcher*> matchers = {&ba, &ssa};
    const BenchRow row = harness.RunWith(base, variant.label, matchers);
    const MatcherAggregate& agg = row.stats.matchers[1];
    std::printf("%-8s %12.3f %10.1f %12.1f %9.2f %8.4f\n", variant.label,
                agg.MeanMillis(), agg.MeanVerified(), agg.MeanCompdists(),
                agg.MeanOptions(), agg.MeanRecall());
  }
  std::printf(
      "\n(identical 'options'/'recall' across variants confirms pruning is "
      "results-preserving; cost columns isolate each family's saving)\n");
  return 0;
}
