// Figure 10: performance cost vs. vehicle capacity (paper sweeps 2-6 seats).

#include <string>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ptar::bench;
  PrintBanner("Figure 10", "cost vs. vehicle capacity");

  BenchConfig base;
  base.riders = 2;  // rider groups of two make the capacity sweep bite
  ObsSession obs(argc, argv, "fig10_capacity");
  Harness harness(base);
  harness.AttachObs(&obs);

  PrintCostHeader("capacity");
  for (const int capacity : {2, 3, 4, 5, 6}) {
    BenchConfig cfg = base;
    cfg.vehicle_capacity = capacity;
    const std::string label = std::to_string(capacity);
    PrintCostRow(label, harness.Run(cfg, label));
  }
  return 0;
}
