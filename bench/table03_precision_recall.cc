// Table III: SSA / DSA precision and recall vs. the number of verified grid
// cells, measured against the exact (BA) option set on identical state.

#include <cstdio>
#include <string>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ptar::bench;
  PrintBanner("Table III", "precision / recall vs. verified grid cells (%)");

  BenchConfig base;
  ObsSession obs(argc, argv, "table03_precision_recall");
  Harness harness(base);
  harness.AttachObs(&obs);

  std::printf("%-14s %-5s %10s %10s\n", "verified(%)", "algo", "precision",
              "recall");
  for (const double fraction : {0.08, 0.16, 0.32, 0.64, 1.0}) {
    BenchConfig cfg = base;
    cfg.verified_grid_fraction = fraction;
    const std::string label =
        std::to_string(static_cast<int>(fraction * 100.0 + 0.5));
    const BenchRow row = harness.Run(cfg, label);
    // Matcher 0 is BA (the reference); report SSA and DSA.
    for (std::size_t m = 1; m < row.stats.matchers.size(); ++m) {
      const ptar::MatcherAggregate& agg = row.stats.matchers[m];
      std::printf("%-14s %-5s %10.4f %10.4f\n", label.c_str(),
                  agg.name.c_str(), agg.MeanPrecision(), agg.MeanRecall());
    }
  }
  return 0;
}
