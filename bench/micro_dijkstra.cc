// Micro-benchmarks for the shortest-path substrate (Section IV's cost
// building block): point-to-point with early stop vs. full single-source,
// and the oracle's cache effect.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "graph/distance_oracle.h"
#include "graph/generators.h"

namespace {

const ptar::RoadNetwork& City() {
  static const ptar::RoadNetwork* g = [] {
    ptar::GridCityOptions opts;
    opts.rows = 40;
    opts.cols = 40;
    opts.seed = 11;
    auto built = ptar::MakeGridCity(opts);
    PTAR_CHECK(built.ok());
    return new ptar::RoadNetwork(std::move(built).value());
  }();
  return *g;
}

void BM_PointToPoint(benchmark::State& state) {
  const ptar::RoadNetwork& g = City();
  ptar::DijkstraEngine engine(&g);
  ptar::Rng rng(1);
  for (auto _ : state) {
    const auto s = static_cast<ptar::VertexId>(
        rng.UniformIndex(g.num_vertices()));
    const auto t = static_cast<ptar::VertexId>(
        rng.UniformIndex(g.num_vertices()));
    benchmark::DoNotOptimize(engine.PointToPoint(s, t));
  }
}
BENCHMARK(BM_PointToPoint);

void BM_SingleSourceFull(benchmark::State& state) {
  const ptar::RoadNetwork& g = City();
  ptar::DijkstraEngine engine(&g);
  ptar::Rng rng(2);
  for (auto _ : state) {
    engine.SingleSource(
        static_cast<ptar::VertexId>(rng.UniformIndex(g.num_vertices())));
    benchmark::DoNotOptimize(engine.last_settled_count());
  }
}
BENCHMARK(BM_SingleSourceFull);

void BM_OracleCached(benchmark::State& state) {
  const ptar::RoadNetwork& g = City();
  ptar::DistanceOracle oracle(&g);
  // Warm a working set of pairs, then measure cached lookups.
  ptar::Rng warm(3);
  std::vector<std::pair<ptar::VertexId, ptar::VertexId>> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.emplace_back(
        static_cast<ptar::VertexId>(warm.UniformIndex(g.num_vertices())),
        static_cast<ptar::VertexId>(warm.UniformIndex(g.num_vertices())));
    oracle.Dist(pairs.back().first, pairs.back().second);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 255];
    benchmark::DoNotOptimize(oracle.Dist(a, b));
  }
}
BENCHMARK(BM_OracleCached);

}  // namespace

BENCHMARK_MAIN();
