// GeoPrune effectiveness bench: verified-vehicles-per-request with and
// without the ellipse prefilter across fleet sizes, plus the standalone
// ELLIPSE matcher for ablation. Writes BENCH_prune.json.
//
// Self-enforced bars (exit 1 on violation, deterministic inputs):
//   - every full-coverage pruned matcher (SSA(1.0)+EL, ELLIPSE) keeps
//     recall exactly 1.0 at every scale — the prefilter is lossless;
//   - the production partial-coverage pair has *identical* recall with and
//     without the prefilter (partial search misses options by design; the
//     prefilter must not change which ones);
//   - at the 10k-vehicle point, SSA(1.0)+EL verifies at least 3x fewer
//     vehicles per request than the grid-lower-bound SSA(1.0) baseline.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "rideshare/baseline_matcher.h"
#include "rideshare/ellipse_matcher.h"
#include "rideshare/ssa_matcher.h"

int main(int argc, char** argv) {
  using namespace ptar;
  using namespace ptar::bench;
  PrintBanner("bench_prune",
              "ellipse-prefilter pruning power vs grid lower bounds");

  BenchConfig base;
  ObsSession obs(argc, argv, "bench_prune");
  Harness harness(base);
  harness.AttachObs(&obs);

  struct Scale {
    int num_vehicles;
    std::size_t num_requests;
  };
  // Fewer requests at the largest fleet keeps the bench in seconds; the
  // per-request means are what the bars are about.
  const std::vector<Scale> scales = {{1000, 100}, {10000, 100}, {50000, 40}};
  // Matcher row indexes within each BenchRow.
  constexpr std::size_t kFull = 1;        // SSA(1.0): grid baseline
  constexpr std::size_t kFullEl = 2;      // SSA(1.0)+EL: pruned twin
  constexpr std::size_t kPartial = 3;     // SSA(0.16): production fraction
  constexpr std::size_t kPartialEl = 4;   // SSA(0.16)+EL
  constexpr std::size_t kEllipse = 5;     // BA+EL ablation matcher

  std::vector<BenchRow> rows;
  std::printf("%-18s %-12s %12s %10s %12s %8s\n", "vehicles", "matcher",
              "time(ms)", "verified", "compdists", "recall");
  bool ok = true;
  for (const Scale& scale : scales) {
    BenchConfig cfg = base;
    cfg.num_vehicles = scale.num_vehicles;
    cfg.num_requests = scale.num_requests;

    BaselineMatcher ba;  // commits; the precision/recall reference
    SsaMatcher ssa_full(1.0);
    PrunedMatcher ssa_full_el(std::make_unique<SsaMatcher>(1.0));
    SsaMatcher ssa_part(base.verified_grid_fraction);
    PrunedMatcher ssa_part_el(
        std::make_unique<SsaMatcher>(base.verified_grid_fraction));
    EllipseMatcher ellipse;
    std::vector<Matcher*> matchers = {&ba,       &ssa_full, &ssa_full_el,
                                      &ssa_part, &ssa_part_el, &ellipse};

    const std::string label = "vehicles=" + std::to_string(scale.num_vehicles);
    rows.push_back(harness.RunWith(cfg, label, matchers));
    const BenchRow& row = rows.back();
    for (std::size_t m = 0; m < row.stats.matchers.size(); ++m) {
      const MatcherAggregate& agg = row.stats.matchers[m];
      std::printf("%-18s %-12s %12.3f %10.1f %12.1f %8.4f\n",
                  (m == 0 ? label.c_str() : ""), agg.name.c_str(),
                  agg.MeanMillis(), agg.MeanVerified(), agg.MeanCompdists(),
                  agg.MeanRecall());
    }

    // Bar 1: full-coverage pruned matchers are lossless.
    for (const std::size_t m : {kFullEl, kEllipse}) {
      const MatcherAggregate& agg = row.stats.matchers[m];
      if (agg.MeanRecall() < 1.0) {
        std::fprintf(stderr,
                     "FAIL %s: %s recall %.6f < 1.0 — the prefilter "
                     "dropped options\n",
                     label.c_str(), agg.name.c_str(), agg.MeanRecall());
        ok = false;
      }
    }
    // Bar 2: on the partial-coverage pair the prefilter must not change
    // the answer, only the work (their misses come from the verified-cell
    // budget, not from pruning).
    const double part = row.stats.matchers[kPartial].MeanRecall();
    const double part_el = row.stats.matchers[kPartialEl].MeanRecall();
    if (std::abs(part - part_el) > 1e-12) {
      std::fprintf(stderr,
                   "FAIL %s: partial-coverage recall changed under pruning "
                   "(%.9f vs %.9f)\n",
                   label.c_str(), part, part_el);
      ok = false;
    }
    // Bar 3: >= 3x verified-vehicle reduction at the 10k point.
    const double baseline = row.stats.matchers[kFull].MeanVerified();
    const double pruned = row.stats.matchers[kFullEl].MeanVerified();
    const double ratio = pruned > 0.0 ? baseline / pruned : 0.0;
    std::printf("%-18s verified-reduction SSA/SSA+EL = %.2fx at full "
                "coverage, %.2fx at %.0f%%\n",
                "", ratio,
                row.stats.matchers[kPartialEl].MeanVerified() > 0.0
                    ? row.stats.matchers[kPartial].MeanVerified() /
                          row.stats.matchers[kPartialEl].MeanVerified()
                    : 0.0,
                base.verified_grid_fraction * 100.0);
    if (scale.num_vehicles == 10000 && ratio < 3.0) {
      std::fprintf(stderr,
                   "FAIL %s: verified-vehicles reduction %.2fx < 3x bar\n",
                   label.c_str(), ratio);
      ok = false;
    }
  }

  if (!WriteMatchingJson("BENCH_prune.json", rows)) {
    std::fprintf(stderr, "failed to write BENCH_prune.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_prune.json\n");
  if (!ok) return 1;
  std::printf("bars met: lossless recall, >= 3x verified reduction at 10k "
              "vehicles\n");
  return 0;
}
