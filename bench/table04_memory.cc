// Table IV: memory cost of the grid index and the kinetic trees vs. the
// grid cell size. The paper reports the grid index growing steeply as the
// cells shrink while the kinetic trees stay essentially flat; the road
// network itself is a fixed cost.

#include <cstdio>
#include <string>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ptar::bench;
  PrintBanner("Table IV", "memory cost vs. grid cell size");

  BenchConfig base;
  ObsSession obs(argc, argv, "table04_memory");
  Harness harness(base);
  harness.AttachObs(&obs);

  std::printf("fixed road-network memory: %.2f MB\n\n",
              harness.graph().MemoryBytes() / 1048576.0);
  std::printf("%-14s %16s %16s\n", "cell(m)", "grid index(MB)",
              "kinetic trees(MB)");
  for (const double cell : {1200.0, 600.0, 300.0, 160.0, 100.0}) {
    BenchConfig cfg = base;
    cfg.cell_size_meters = cell;
    const std::string label = std::to_string(static_cast<int>(cell));
    const BenchRow row = harness.Run(cfg, label);
    std::printf("%-14s %16.3f %16.3f\n", label.c_str(),
                row.grid_memory_bytes / 1048576.0,
                row.tree_memory_bytes / 1048576.0);
  }
  return 0;
}
