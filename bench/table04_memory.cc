// Table IV: memory cost of the grid index and the kinetic trees vs. the
// grid cell size, plus the kinetic-tree representation comparison the
// arena overhaul is gated on. The paper reports the grid index growing
// steeply as the cells shrink while the kinetic trees stay essentially
// flat; the road network itself is a fixed cost.
//
// Section 2 snapshots a fleet under paper-scale load (most vehicles
// carrying 1..4 concurrent requests) through both tree representations —
// the arena/SoA KineticTree and the pre-overhaul per-branch-vector
// LegacyKineticTree, fed identical commit sequences (the tree twin proves
// the branch sets identical; kinetic_memory_test proves both MemoryBytes
// figures byte-exact against a counting allocator). Emits the
// schema-versioned BENCH_table04.json pinned by the bench-gate target.
//
// Self-enforced bar (exit 1 on violation, deterministic inputs): at the
// 10k-vehicle point, both representations running at the seed's shipped
// branch cap (64), the arena must hold its fleet in >= 4x fewer bytes per
// vehicle than the legacy representation. An uncapped row (identical
// branch sets, prefix sharing only) is reported alongside without a bar.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "check/tree_twin.h"
#include "common/timer.h"
#include "graph/dijkstra.h"
#include "kinetic/kinetic_tree.h"
#include "obs/json_writer.h"
#include "obs/report.h"
#include "obs/version.h"

namespace ptar {
namespace {

constexpr double kMemoryBar = 4.0;  ///< Legacy/arena bytes-per-vehicle.
constexpr int kBarVehicles = 10000;
/// The pre-overhaul tree shipped with max_branches=64; the bar compares
/// both representations at that cap — the configuration the seed actually
/// ran — where the legacy tree's real costs show: the commit path
/// materializes every enumerated schedule and `resize(64)` keeps the
/// enumeration-sized spine capacity. The uncapped row is also reported
/// (prefix sharing alone, identical branch sets) without a bar.
constexpr std::size_t kSeedDefaultCap = 64;

/// SplitMix64; the bench's only randomness source (deterministic per seed).
std::uint64_t NextRand(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct CellRow {
  double cell_size_meters = 0.0;
  std::size_t grid_bytes = 0;
  std::size_t tree_bytes = 0;
};

struct FleetRow {
  int num_vehicles = 0;
  std::size_t tree_max_branches = 0;  ///< 0 = unlimited.
  int loaded_vehicles = 0;          ///< Vehicles with >= 1 request.
  std::uint64_t requests = 0;       ///< Commits applied across the fleet.
  std::size_t arena_bytes = 0;      ///< Sum of KineticTree::MemoryBytes.
  std::size_t legacy_bytes = 0;     ///< Sum of legacy MemoryBytes(16).
  double arena_per_vehicle = 0.0;
  double legacy_per_vehicle = 0.0;
  double legacy_over_arena = 0.0;
  std::size_t branch_p50 = 0;
  std::size_t branch_p99 = 0;
  std::size_t live_nodes = 0;       ///< Arena-wide reachable stop nodes.
  std::size_t node_slots = 0;       ///< Arena-wide allocated slots.
  double arena_utilization = 0.0;   ///< live / slots.
  double build_ms = 0.0;            ///< Wall clock (gate-exempt suffix).
};

/// Dense shortest-path table over a small vertex pool so the 10k-vehicle
/// sweep costs table lookups, not Dijkstra runs.
class PooledDistances {
 public:
  PooledDistances(const RoadNetwork& graph, std::size_t pool_size) {
    DijkstraEngine router(&graph);
    pool_.reserve(pool_size);
    for (std::size_t i = 0; i < pool_size; ++i) {
      // Scattered deterministically across the row-major grid city.
      pool_.push_back(static_cast<VertexId>(
          (i * 7919 + 13) % graph.num_vertices()));
    }
    table_.assign(pool_size * pool_size, 0.0);
    index_.assign(graph.num_vertices(), -1);
    for (std::size_t i = 0; i < pool_size; ++i) {
      index_[pool_[i]] = static_cast<int>(i);
    }
    for (std::size_t s = 0; s < pool_size; ++s) {
      for (std::size_t t = 0; t < pool_size; ++t) {
        table_[s * pool_size + t] =
            s == t ? 0.0 : router.PointToPoint(pool_[s], pool_[t]);
      }
    }
    near_.resize(pool_size * kNearby);
    std::vector<std::size_t> order(pool_size);
    for (std::size_t s = 0; s < pool_size; ++s) {
      for (std::size_t t = 0; t < pool_size; ++t) order[t] = t;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return table_[s * pool_size + a] <
                         table_[s * pool_size + b];
                });
      for (std::size_t n = 0; n < kNearby; ++n) {
        near_[s * kNearby + n] = order[n];
      }
    }
  }

  VertexId Vertex(std::uint64_t r) const { return pool_[r % pool_.size()]; }

  std::size_t PoolIndex(std::uint64_t r) const { return r % pool_.size(); }

  VertexId At(std::size_t i) const { return pool_[i]; }

  /// One of the kNearby pool vertices closest to pool vertex `i`
  /// (including `i` itself). Corridor trips drawn from these neighborhoods
  /// overlap enough to share rides, which is what grows deep trees.
  VertexId Near(std::size_t i, std::uint64_t r) const {
    return pool_[near_[i * kNearby + r % kNearby]];
  }

  KineticTree::DistFn Fn() const {
    return [this](VertexId a, VertexId b) {
      const int ia = index_[a];
      const int ib = index_[b];
      PTAR_CHECK(ia >= 0 && ib >= 0);
      return table_[static_cast<std::size_t>(ia) * pool_.size() + ib];
    };
  }

 private:
  static constexpr std::size_t kNearby = 6;

  std::vector<VertexId> pool_;
  std::vector<int> index_;
  std::vector<Distance> table_;
  std::vector<std::size_t> near_;  ///< kNearby nearest pool indices each.
};

/// Builds one vehicle's trees (arena + legacy) from an identical commit
/// sequence and folds their footprints into `row`. Trees are measured live
/// — with the capacity slack the commit path actually left — because that
/// is what a resident fleet costs.
void SnapshotVehicle(int vehicle, std::size_t cap,
                     const PooledDistances& dists,
                     const KineticTree::DistFn& dist, FleetRow* row,
                     std::vector<std::size_t>* branch_counts) {
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL * (vehicle + 1) ^ 0xd1b54a32;
  const std::size_t loc_idx = dists.PoolIndex(NextRand(rng));
  const VertexId location = dists.At(loc_idx);
  KineticTree arena(vehicle, location, /*capacity=*/5,
                    cap == 0 ? KineticTree::kUnlimitedBranches : cap);
  check::LegacyKineticTree legacy(
      vehicle, location, /*capacity=*/5,
      cap == 0 ? KineticTree::kUnlimitedBranches : cap);

  // Peak-load profile (the regime Table IV is about): a tenth of the
  // fleet idles, the rest serves a shared corridor — 4..5 single-rider
  // requests picked up near the vehicle and dropped near a common
  // destination neighborhood, the workload shape that actually rideshares
  // and therefore grows real multi-branch trees.
  const std::uint64_t load_roll = NextRand(rng) % 100;
  const int num_requests =
      load_roll < 10 ? 0 : static_cast<int>(NextRand(rng) % 2) + 4;
  const std::size_t dest_idx = dists.PoolIndex(NextRand(rng));
  for (int j = 0; j < num_requests; ++j) {
    Request r;
    r.id = j + 1;
    r.start = dists.Near(loc_idx, NextRand(rng));
    do {
      r.destination = dists.Near(dest_idx, NextRand(rng));
    } while (r.destination == r.start);
    r.riders = 1;
    r.max_wait_dist = 3000.0 + static_cast<double>(NextRand(rng) % 2500);
    r.epsilon = 1.8 + 0.01 * static_cast<double>(NextRand(rng) % 60);
    const Distance direct = dist(r.start, r.destination);
    const Status arena_st = arena.Commit(r, direct, direct, dist);
    const Status legacy_st = legacy.Commit(r, direct, direct, dist);
    if (cap == 0) {
      PTAR_CHECK(arena_st.ok() == legacy_st.ok())
          << "representation twin diverged on commit";
    } else if (arena_st.ok() != legacy_st.ok()) {
      // Capped retention keeps slightly different branch sets (skyline +
      // fill vs the old best-by-total sort), so a later request's
      // feasibility can legitimately differ; freeze this vehicle's load at
      // the divergence so both snapshots serve the same commits.
      break;
    }
    if (arena_st.ok()) ++row->requests;
  }

  if (num_requests > 0) ++row->loaded_vehicles;
  row->arena_bytes += arena.MemoryBytes();
  row->legacy_bytes += legacy.MemoryBytes();
  const KineticTree::ArenaStats stats = arena.arena_stats();
  row->live_nodes += stats.live_nodes;
  row->node_slots += stats.node_slots;
  branch_counts->push_back(arena.num_branches());
  if (cap == 0) {
    PTAR_CHECK(arena.num_branches() == legacy.schedules().size())
        << "representation twin diverged on branch count";
  }
}

FleetRow SnapshotFleet(int num_vehicles, std::size_t cap,
                       const PooledDistances& dists) {
  FleetRow row;
  row.num_vehicles = num_vehicles;
  row.tree_max_branches = cap;
  const KineticTree::DistFn dist = dists.Fn();
  std::vector<std::size_t> branch_counts;
  branch_counts.reserve(num_vehicles);
  Timer timer;
  for (int v = 0; v < num_vehicles; ++v) {
    SnapshotVehicle(v, cap, dists, dist, &row, &branch_counts);
  }
  row.build_ms = timer.ElapsedMillis();

  std::sort(branch_counts.begin(), branch_counts.end());
  row.branch_p50 = branch_counts[branch_counts.size() / 2];
  row.branch_p99 = branch_counts[branch_counts.size() * 99 / 100];
  row.arena_per_vehicle =
      static_cast<double>(row.arena_bytes) / num_vehicles;
  row.legacy_per_vehicle =
      static_cast<double>(row.legacy_bytes) / num_vehicles;
  row.legacy_over_arena = row.legacy_per_vehicle / row.arena_per_vehicle;
  row.arena_utilization =
      row.node_slots == 0
          ? 0.0
          : static_cast<double>(row.live_nodes) / row.node_slots;
  return row;
}

bool WriteJson(const std::string& path, const std::vector<CellRow>& cells,
               const std::vector<FleetRow>& fleets) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("benchmark", "table04_memory");
  w.KV("schema_version",
       static_cast<std::int64_t>(obs::kReportSchemaVersion));
  w.KV("git_describe", obs::GitDescribe());
  w.Key("cells");
  w.BeginArray();
  for (const CellRow& c : cells) {
    w.BeginObject();
    w.KV("cell_size_meters", c.cell_size_meters);
    w.KV("grid_bytes", static_cast<std::uint64_t>(c.grid_bytes));
    w.KV("tree_bytes", static_cast<std::uint64_t>(c.tree_bytes));
    w.EndObject();
  }
  w.EndArray();
  w.Key("fleets");
  w.BeginArray();
  for (const FleetRow& f : fleets) {
    w.BeginObject();
    w.KV("num_vehicles", static_cast<std::int64_t>(f.num_vehicles));
    w.KV("tree_max_branches",
         static_cast<std::uint64_t>(f.tree_max_branches));
    w.KV("loaded_vehicles", static_cast<std::int64_t>(f.loaded_vehicles));
    w.KV("requests", f.requests);
    w.KV("arena_bytes", static_cast<std::uint64_t>(f.arena_bytes));
    w.KV("legacy_bytes", static_cast<std::uint64_t>(f.legacy_bytes));
    w.KV("arena_bytes_per_vehicle", f.arena_per_vehicle);
    w.KV("legacy_bytes_per_vehicle", f.legacy_per_vehicle);
    w.KV("legacy_over_arena", f.legacy_over_arena);
    w.KV("branch_p50", static_cast<std::uint64_t>(f.branch_p50));
    w.KV("branch_p99", static_cast<std::uint64_t>(f.branch_p99));
    w.KV("arena_live_nodes", static_cast<std::uint64_t>(f.live_nodes));
    w.KV("arena_node_slots", static_cast<std::uint64_t>(f.node_slots));
    w.KV("arena_utilization", f.arena_utilization);
    w.KV("build_ms", f.build_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = w.TakeResult();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  using namespace ptar::bench;
  PrintBanner("Table IV", "memory cost vs. grid cell size");

  BenchConfig base;
  ObsSession obs(argc, argv, "table04_memory");
  Harness harness(base);
  harness.AttachObs(&obs);

  std::printf("fixed road-network memory: %.2f MB\n\n",
              harness.graph().MemoryBytes() / 1048576.0);
  std::printf("%-14s %16s %16s\n", "cell(m)", "grid index(MB)",
              "kinetic trees(MB)");
  std::vector<CellRow> cells;
  for (const double cell : {1200.0, 600.0, 300.0, 160.0, 100.0}) {
    BenchConfig cfg = base;
    cfg.cell_size_meters = cell;
    const std::string label = std::to_string(static_cast<int>(cell));
    const BenchRow row = harness.Run(cfg, label);
    std::printf("%-14s %16.3f %16.3f\n", label.c_str(),
                row.grid_memory_bytes / 1048576.0,
                row.tree_memory_bytes / 1048576.0);
    cells.push_back(CellRow{cell, row.grid_memory_bytes,
                            row.tree_memory_bytes});
  }

  std::printf("\n--- kinetic-tree representation: arena/SoA vs legacy "
              "per-branch vectors ---\n");
  const PooledDistances dists(harness.graph(), /*pool_size=*/32);
  std::printf("%-10s %6s %12s %12s %8s %8s %8s %8s %10s\n", "vehicles",
              "cap", "arena B/veh", "legacy B/veh", "ratio", "br p50",
              "br p99", "util", "build(ms)");
  std::vector<FleetRow> fleets;
  bool ok = true;
  const struct {
    int num_vehicles;
    std::size_t cap;
  } sweeps[] = {{1000, 0},                      // sharing-only, no bar
                {1000, kSeedDefaultCap},
                {kBarVehicles, kSeedDefaultCap}};  // the bar row
  for (const auto& sweep : sweeps) {
    const FleetRow row = SnapshotFleet(sweep.num_vehicles, sweep.cap, dists);
    std::printf(
        "%-10d %6zu %12.1f %12.1f %7.2fx %8zu %8zu %7.1f%% %10.1f\n",
        row.num_vehicles, row.tree_max_branches, row.arena_per_vehicle,
        row.legacy_per_vehicle, row.legacy_over_arena, row.branch_p50,
        row.branch_p99, row.arena_utilization * 100.0, row.build_ms);
    if (row.num_vehicles == kBarVehicles &&
        row.tree_max_branches == kSeedDefaultCap &&
        row.legacy_over_arena < kMemoryBar) {
      std::fprintf(stderr,
                   "FAIL vehicles=%d cap=%zu: arena holds the fleet in "
                   "only %.2fx fewer bytes/vehicle than legacy "
                   "(bar: %.1fx)\n",
                   row.num_vehicles, row.tree_max_branches,
                   row.legacy_over_arena, kMemoryBar);
      ok = false;
    }
    fleets.push_back(row);
  }

  if (!WriteJson("BENCH_table04.json", cells, fleets)) {
    std::fprintf(stderr, "failed to write BENCH_table04.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_table04.json\n");
  if (!ok) return 1;
  std::printf("bar met: >= %.1fx fewer bytes/vehicle than the legacy "
              "representation at %d vehicles (cap %zu, the seed's shipped "
              "default)\n",
              kMemoryBar, kBarVehicles, kSeedDefaultCap);
  return 0;
}

}  // namespace
}  // namespace ptar

int main(int argc, char** argv) { return ptar::Main(argc, argv); }
