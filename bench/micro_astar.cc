// Micro-benchmark: grid-guided A* vs. plain Dijkstra for point-to-point
// queries (the optional oracle accelerator; see grid/astar.h).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "grid/astar.h"

namespace {

const ptar::RoadNetwork& City() {
  static const ptar::RoadNetwork* g = [] {
    ptar::GridCityOptions opts;
    opts.rows = 40;
    opts.cols = 40;
    opts.seed = 11;
    auto built = ptar::MakeGridCity(opts);
    PTAR_CHECK(built.ok());
    return new ptar::RoadNetwork(std::move(built).value());
  }();
  return *g;
}

const ptar::GridIndex& Index() {
  static const ptar::GridIndex* index = [] {
    auto built = ptar::GridIndex::Build(&City(), {.cell_size_meters = 300.0});
    PTAR_CHECK(built.ok());
    return new ptar::GridIndex(std::move(built).value());
  }();
  return *index;
}

void BM_DijkstraP2P(benchmark::State& state) {
  ptar::DijkstraEngine engine(&City());
  ptar::Rng rng(1);
  const std::size_t n = City().num_vertices();
  std::size_t settled = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto s = static_cast<ptar::VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<ptar::VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(engine.PointToPoint(s, t));
    settled += engine.last_settled_count();
    ++runs;
  }
  state.counters["settled/query"] =
      runs ? static_cast<double>(settled) / runs : 0;
}
BENCHMARK(BM_DijkstraP2P);

void BM_AStarP2P(benchmark::State& state) {
  ptar::AStarEngine engine(&City(), &Index());
  ptar::Rng rng(1);  // same query stream as the Dijkstra benchmark
  const std::size_t n = City().num_vertices();
  std::size_t settled = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto s = static_cast<ptar::VertexId>(rng.UniformIndex(n));
    const auto t = static_cast<ptar::VertexId>(rng.UniformIndex(n));
    benchmark::DoNotOptimize(engine.PointToPoint(s, t));
    settled += engine.last_settled_count();
    ++runs;
  }
  state.counters["settled/query"] =
      runs ? static_cast<double>(settled) / runs : 0;
}
BENCHMARK(BM_AStarP2P);

}  // namespace

BENCHMARK_MAIN();
