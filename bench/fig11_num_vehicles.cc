// Figure 11: performance cost vs. the number of vehicles. The paper sweeps
// 12K-20K taxis on the 122k-vertex Shanghai network; we keep the same
// 0.6x-1.0x ratios on the scaled city.

#include <string>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ptar::bench;
  PrintBanner("Figure 11", "cost vs. number of vehicles (paper: 12K-20K)");

  BenchConfig base;
  ObsSession obs(argc, argv, "fig11_num_vehicles");
  Harness harness(base);
  harness.AttachObs(&obs);

  PrintCostHeader("vehicles");
  for (const int vehicles : {240, 280, 320, 360, 400}) {
    BenchConfig cfg = base;
    cfg.num_vehicles = vehicles;
    const std::string label = std::to_string(vehicles);
    PrintCostRow(label, harness.Run(cfg, label));
  }
  return 0;
}
