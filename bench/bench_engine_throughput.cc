// Request-parallel engine throughput: the classic serial engine vs the
// pipelined engine (DESIGN.md §12) at engine_threads in {1, 2, 4, 8} on a
// 10k-vertex perturbed grid city with 1k vehicles, written to
// BENCH_engine_throughput.json (same schema-versioned envelope as the
// other bench emitters).
//
// Per row: end-to-end requests/sec, commit-latency p50/p99 (admission to
// commit, from the pipeline/request_latency_us histogram), conflict rate,
// and re-match counts. Every pipelined row runs with the SAME pinned
// wave_size, so the determinism contract applies: committed assignments
// are verified identical across all thread counts before any number is
// reported — a row that diverges from the engine_threads=1 replay fails
// the bench outright.
//
// The speedup bar (>= 3x at engine_threads=8 vs the serial pipeline) is
// only enforced when the host actually has 8 cores to run on; on smaller
// hosts the bench still emits honest numbers (host_cpus is part of the
// JSON) but exits 0, since wall-clock parallel speedup is physically
// unavailable there.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "grid/grid_index.h"
#include "obs/json_writer.h"
#include "obs/report.h"
#include "obs/version.h"
#include "rideshare/ssa_matcher.h"
#include "sim/engine.h"
#include "sim/run_report.h"
#include "sim/workload.h"

namespace ptar {
namespace {

constexpr int kNumVehicles = 1000;
constexpr std::size_t kNumRequests = 400;
constexpr double kDurationSeconds = 120.0;  ///< Dense stream: full waves.
constexpr int kWaveSize = 16;               ///< Pinned for all rows.
constexpr double kSsaFraction = 0.16;       ///< Paper default.
constexpr double kSpeedupBar = 3.0;
constexpr int kBarThreads = 8;

struct Row {
  std::string label;
  int engine_threads = 0;  ///< 0 = classic serial Run().
  double elapsed_ms = 0.0;
  double requests_per_sec = 0.0;
  std::uint64_t served = 0;
  std::uint64_t unserved = 0;
  std::uint64_t waves = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t rematches = 0;
  std::uint64_t serial_rematches = 0;
  double conflict_rate = 0.0;     ///< conflicts / requests.
  double commit_p50_us = 0.0;     ///< Admission-to-commit latency.
  double commit_p99_us = 0.0;
  double speedup_vs_serial = 0.0;  ///< vs the engine_threads=1 pipeline.
};

EngineOptions BaseOptions() {
  EngineOptions eopts;
  eopts.num_vehicles = kNumVehicles;
  eopts.seed = 13;
  eopts.audit_after_commit = false;  // Measure dispatch, not the auditor.
  return eopts;
}

Row RunClassic(const RoadNetwork& graph, const GridIndex& grid,
               const std::vector<Request>& requests,
               bench::ObsSession* obs) {
  Row row;
  row.label = "classic-serial";
  Engine engine(&graph, &grid, BaseOptions());
  if (obs->lifecycle() != nullptr) {
    engine.SetLifecycleRecorder(obs->lifecycle());
  }
  SsaMatcher ssa(kSsaFraction);
  std::vector<Matcher*> matchers = {&ssa};
  Timer timer;
  const RunStats stats = engine.Run(requests, matchers);
  row.elapsed_ms = timer.ElapsedMillis();
  row.requests_per_sec = requests.size() / (row.elapsed_ms / 1e3);
  row.served = stats.served;
  row.unserved = stats.unserved;
  obs->Add(row.label, BuildRunReport(stats, engine.metrics(),
                                     engine.telemetry().Export(),
                                     "bench_engine_throughput"));
  return row;
}

Row RunPipelined(const RoadNetwork& graph, const GridIndex& grid,
                 const std::vector<Request>& requests, int threads,
                 std::vector<CommitRecord>* log, bench::ObsSession* obs) {
  Row row;
  row.label = "pipeline-t" + std::to_string(threads);
  row.engine_threads = threads;
  EngineOptions eopts = BaseOptions();
  eopts.engine_threads = threads;
  eopts.wave_size = kWaveSize;
  Engine engine(&graph, &grid, eopts);
  if (obs->lifecycle() != nullptr) {
    engine.SetLifecycleRecorder(obs->lifecycle());
  }
  Timer timer;
  const RunStats stats = engine.RunPipelined(
      requests, [] { return std::make_unique<SsaMatcher>(kSsaFraction); },
      log);
  row.elapsed_ms = timer.ElapsedMillis();
  row.requests_per_sec = requests.size() / (row.elapsed_ms / 1e3);
  row.served = stats.served;
  row.unserved = stats.unserved;
  row.waves = stats.waves;
  row.conflicts = stats.conflicts;
  row.rematches = stats.rematches;
  row.serial_rematches = stats.serial_rematches;
  row.conflict_rate = static_cast<double>(stats.conflicts) / requests.size();
  if (const obs::LatencyHistogram* latency =
          engine.metrics().FindHistogram("pipeline/request_latency_us")) {
    row.commit_p50_us = latency->Percentile(50);
    row.commit_p99_us = latency->Percentile(99);
  }
  obs->Add(row.label, BuildRunReport(stats, engine.metrics(),
                                     engine.telemetry().Export(),
                                     "bench_engine_throughput"));
  return row;
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows,
               unsigned host_cpus) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("benchmark", "engine_throughput");
  w.KV("schema_version",
       static_cast<std::int64_t>(obs::kReportSchemaVersion));
  w.KV("git_describe", obs::GitDescribe());
  w.KV("host_cpus", static_cast<std::uint64_t>(host_cpus));
  w.KV("num_vehicles", static_cast<std::uint64_t>(kNumVehicles));
  w.KV("num_requests", static_cast<std::uint64_t>(kNumRequests));
  w.KV("wave_size", static_cast<std::uint64_t>(kWaveSize));
  w.Key("rows");
  w.BeginArray();
  for (const Row& r : rows) {
    w.BeginObject();
    w.KV("label", r.label);
    w.KV("engine_threads", static_cast<std::int64_t>(r.engine_threads));
    w.KV("elapsed_ms", r.elapsed_ms);
    w.KV("requests_per_sec", r.requests_per_sec);
    w.KV("served", r.served);
    w.KV("unserved", r.unserved);
    w.KV("waves", r.waves);
    w.KV("conflicts", r.conflicts);
    w.KV("rematches", r.rematches);
    w.KV("serial_rematches", r.serial_rematches);
    w.KV("conflict_rate", r.conflict_rate);
    w.KV("commit_p50_us", r.commit_p50_us);
    w.KV("commit_p99_us", r.commit_p99_us);
    w.KV("speedup_vs_serial", r.speedup_vs_serial);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = w.TakeResult();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  std::printf("=== bench_engine_throughput: serial vs request-parallel ===\n");
  bench::ObsSession obs(argc, argv, "engine_throughput");
  const unsigned host_cpus = std::thread::hardware_concurrency();

  GridCityOptions copts;
  copts.rows = 100;
  copts.cols = 100;
  copts.spacing_meters = 100.0;
  copts.seed = 42;
  auto g = MakeGridCity(copts);
  PTAR_CHECK(g.ok()) << g.status();
  const RoadNetwork graph = std::move(g).value();
  auto gi = GridIndex::Build(&graph, {.cell_size_meters = 400.0});
  PTAR_CHECK(gi.ok()) << gi.status();
  const GridIndex grid = std::move(gi).value();

  WorkloadOptions wopts;
  wopts.num_requests = kNumRequests;
  wopts.duration_seconds = kDurationSeconds;
  wopts.epsilon = 0.5;
  wopts.waiting_minutes = 3.0;
  wopts.seed = 8;
  auto reqs = GenerateWorkload(graph, wopts);
  PTAR_CHECK(reqs.ok()) << reqs.status();
  const std::vector<Request> requests = std::move(reqs).value();

  std::printf("city: %zu vertices, %d vehicles, %zu requests, wave %d, "
              "host cpus %u\n\n",
              graph.num_vertices(), kNumVehicles, requests.size(), kWaveSize,
              host_cpus);
  std::printf("%-16s %8s %10s %9s %9s %9s %11s %11s %8s\n", "row", "elapsed",
              "req/s", "served", "conflicts", "rematch", "p50_us", "p99_us",
              "speedup");

  std::vector<Row> rows;
  rows.push_back(RunClassic(graph, grid, requests, &obs));
  std::vector<CommitRecord> reference_log;
  double serial_rps = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    std::vector<CommitRecord> log;
    Row row = RunPipelined(graph, grid, requests, threads, &log, &obs);
    if (threads == 1) {
      reference_log = std::move(log);
      serial_rps = row.requests_per_sec;
    } else if (log != reference_log) {
      // The determinism contract broke: timing numbers from diverging runs
      // would compare different work.
      std::fprintf(stderr,
                   "FAIL: engine_threads=%d commits diverge from the "
                   "engine_threads=1 replay\n",
                   threads);
      return 1;
    }
    row.speedup_vs_serial = row.requests_per_sec / serial_rps;
    rows.push_back(row);
  }
  rows.front().speedup_vs_serial =
      rows.front().requests_per_sec / serial_rps;

  for (const Row& r : rows) {
    std::printf("%-16s %7.0fms %10.1f %9llu %9llu %9llu %11.0f %11.0f "
                "%7.2fx\n",
                r.label.c_str(), r.elapsed_ms, r.requests_per_sec,
                static_cast<unsigned long long>(r.served),
                static_cast<unsigned long long>(r.conflicts),
                static_cast<unsigned long long>(r.rematches), r.commit_p50_us,
                r.commit_p99_us, r.speedup_vs_serial);
  }

  if (!WriteJson("BENCH_engine_throughput.json", rows, host_cpus)) {
    std::fprintf(stderr, "failed to write BENCH_engine_throughput.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_engine_throughput.json\n");

  const Row& bar_row = rows.back();
  PTAR_CHECK(bar_row.engine_threads == kBarThreads);
  if (host_cpus >= static_cast<unsigned>(kBarThreads)) {
    if (bar_row.speedup_vs_serial < kSpeedupBar) {
      std::fprintf(stderr,
                   "FAIL: %.2fx at engine_threads=%d is below the %.1fx "
                   "bar\n",
                   bar_row.speedup_vs_serial, kBarThreads, kSpeedupBar);
      return 1;
    }
    std::printf("speedup at engine_threads=%d: %.2fx (bar: %.1fx)\n",
                kBarThreads, bar_row.speedup_vs_serial, kSpeedupBar);
  } else {
    std::printf("speedup at engine_threads=%d: %.2fx — bar (%.1fx) not "
                "enforced: host has only %u cpus\n",
                kBarThreads, bar_row.speedup_vs_serial, kSpeedupBar,
                host_cpus);
  }
  return 0;
}

}  // namespace
}  // namespace ptar

int main(int argc, char** argv) { return ptar::Main(argc, argv); }
