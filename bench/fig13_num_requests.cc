// Figure 13: performance cost and sharing rate vs. the number of requests.
// The paper sweeps 1000-9000 requests from the Shanghai trace; we keep the
// same 1x-9x ratios on the scaled stream and report the sharing rate
// (fraction of served requests that rode with others) alongside.

#include <cstdio>
#include <string>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ptar::bench;
  PrintBanner("Figure 13",
              "cost and sharing rate vs. number of requests (paper: 1K-9K)");

  BenchConfig base;
  ObsSession obs(argc, argv, "fig13_num_requests");
  Harness harness(base);
  harness.AttachObs(&obs);

  PrintCostHeader("requests");
  for (const std::size_t n : {30u, 90u, 150u, 210u, 270u}) {
    BenchConfig cfg = base;
    cfg.num_requests = n;
    const std::string label = std::to_string(n);
    const BenchRow row = harness.Run(cfg, label);
    PrintCostRow(label, row);
    std::printf("%-14s sharing rate %.3f (served %llu / %zu)\n\n",
                label.c_str(), row.stats.SharingRate(),
                static_cast<unsigned long long>(row.stats.served), n);
  }
  return 0;
}
