// End-to-end matching cost tracker. Runs the standard BA / SSA / DSA trio on
// the base configuration — serially, with a 4-thread pool, and on the CH
// distance backend — and writes the results to BENCH_matching.json so
// successive revisions of the hot path can be compared by tooling. The
// threads=1/threads=4 rows also double as a quick determinism smoke check:
// all non-timing columns must match between them.

#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ptar::bench;

  PrintBanner("bench_matching",
              "end-to-end matching cost, serial vs thread pool");

  BenchConfig cfg;
  ObsSession obs(argc, argv, "bench_matching");
  Harness harness(cfg);
  harness.AttachObs(&obs);

  std::vector<BenchRow> rows;
  PrintCostHeader("threads");
  {
    BenchConfig serial = cfg;
    serial.threads = 1;
    rows.push_back(harness.Run(serial, "threads=1"));
    PrintCostRow("1", rows.back());
  }
  {
    BenchConfig pooled = cfg;
    pooled.threads = 4;
    rows.push_back(harness.Run(pooled, "threads=4"));
    PrintCostRow("4", rows.back());
  }
  {
    BenchConfig ch = cfg;
    ch.threads = 1;
    ch.distance_backend = ptar::DistanceBackend::kCH;
    rows.push_back(harness.Run(ch, "threads=1,backend=ch"));
    PrintCostRow("1 (ch)", rows.back());
  }
  {
    BenchConfig ch = cfg;
    ch.threads = 4;
    ch.distance_backend = ptar::DistanceBackend::kCH;
    rows.push_back(harness.Run(ch, "threads=4,backend=ch"));
    PrintCostRow("4 (ch)", rows.back());
  }

  if (!WriteMatchingJson("BENCH_matching.json", rows)) {
    std::fprintf(stderr, "failed to write BENCH_matching.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_matching.json\n");
  return 0;
}
