// Figure 12: performance cost vs. the grid cell size. The paper sweeps
// 3333 m down to 909 m on the ~40 km Shanghai box (12x12 to 44x44 grids);
// we sweep the same grid granularities on the scaled city.

#include <string>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ptar::bench;
  PrintBanner("Figure 12", "cost vs. grid cell size (meters)");

  BenchConfig base;
  ObsSession obs(argc, argv, "fig12_grid_cell_size");
  Harness harness(base);
  harness.AttachObs(&obs);

  PrintCostHeader("cell(m)");
  for (const double cell : {1200.0, 600.0, 300.0, 160.0, 100.0}) {
    BenchConfig cfg = base;
    cfg.cell_size_meters = cell;
    const std::string label = std::to_string(static_cast<int>(cell));
    PrintCostRow(label, harness.Run(cfg, label));
  }
  return 0;
}
